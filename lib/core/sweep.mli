(** Domain-parallel sweep runner with a content-addressed result cache.

    An experiment's grid becomes a list of named {e points} — pure
    functions from a derived RNG to a JSON value — and [run] evaluates
    them across the shared domain pool, consulting (and feeding) the
    on-disk {!Cache} keyed by content.

    {b Determinism.} Each point's RNG is seeded from
    [sweep seed XOR hash(experiment ^ point name)], never from
    evaluation order, so [run] at [jobs = k] is bit-identical to
    [jobs = 1] and a cache hit is bit-identical to a recompute. The
    contract this rests on: a point's name must encode {e every} input
    of its computation (sizes, rates, horizons, densities), and its
    body must depend on nothing but the name-derived inputs and the
    provided RNG.

    {b Cache keys.} [hash(sweep schema version, experiment, seed,
    config tag, point name)]. Changing engine semantics means bumping
    the schema version (or the [config_tag] at the call site), which
    orphans old entries rather than serving them stale; [countq cache
    clear] reclaims the space. *)

type point
(** A named, pure grid point. *)

type stats = { points : int; hits : int; misses : int }

val no_stats : stats
val add_stats : stats -> stats -> stats

type ctx
(** How a sweep executes: the shared pool, the optional cache, and the
    spot-check switch. One [ctx] is threaded through every experiment
    of a run so they share one domain budget and one cache handle. *)

exception Cache_mismatch of { experiment : string; point : string }
(** Raised by the spot-check guard when a cached value disagrees with
    a fresh recompute of the same point. *)

val ctx :
  ?jobs:int ->
  ?pool:Countq_util.Parallel.pool ->
  ?cache:Cache.t ->
  ?spot_check:bool ->
  ?spot_seed:int64 ->
  ?shards:int ->
  unit ->
  ctx
(** [jobs] (default 1) sizes a fresh pool unless [pool] shares an
    existing one. [spot_check] (default false) recomputes one cached
    point per [run] — picked by [spot_seed], which the bench harness
    varies per invocation — and raises {!Cache_mismatch} on
    disagreement. [shards] (default 1) asks the experiments that drive
    engine runs big enough to matter (E29, E30) to execute each run
    domain-sharded via {!Countq_simnet.Shard}; results are
    bit-identical, so this is purely a wall-clock lever. Sharded
    points carry the shard count in their names — they cache
    separately from sequential ones.
    @raise Invalid_argument if [shards < 1]. *)

val serial : unit -> ctx
(** One lane, no cache — the default everywhere a [ctx] is optional. *)

val of_option : ctx option -> ctx
val pool : ctx -> Countq_util.Parallel.pool
val jobs : ctx -> int
val cache : ctx -> Cache.t option

val shards : ctx -> int
(** The requested per-run shard count (1 = sequential engines). *)

val point : name:string -> (rng:Countq_util.Rng.t -> Countq_util.Json.t) -> point
(** A generic point; the JSON value is what gets cached. *)

val rows_point :
  name:string -> (rng:Countq_util.Rng.t -> string list list) -> point
(** A point that evaluates to table rows (the common case). *)

val encode_rows : string list list -> Countq_util.Json.t
val decode_rows : Countq_util.Json.t -> string list list option

val run :
  ?seed:int64 ->
  ?config_tag:string ->
  ?valid:(Countq_util.Json.t -> bool) ->
  ctx ->
  experiment:string ->
  point list ->
  Countq_util.Json.t list * stats
(** Evaluate the grid: look every point up in the cache (a cached value
    failing [valid] counts as a miss), evaluate the misses on the pool
    (claiming one point at a time), append them to the cache, and
    return the values in grid order. [config_tag] (default
    ["engine:default"]) names the engine configuration in the cache
    key. @raise Invalid_argument on duplicate point names. *)

val run_rows :
  ?seed:int64 ->
  ?config_tag:string ->
  ctx ->
  experiment:string ->
  point list ->
  string list list * stats
(** [run] for {!rows_point} grids: results are concatenated in grid
    order, and cached values that do not decode as rows fall back to
    recomputation. *)
