(** Uniform one-shot drivers over every protocol in the portfolio.

    The normalisation rule makes cross-protocol comparison honest: a
    protocol run with an expanded step of width [c] (receive capacity
    [c] > 1, used by the tree protocols exactly as Section 4 allows) has
    its delays multiplied by [c], because one expanded step is
    simulable by [c] base-model steps. Base-model runs ([c = 1]) are
    unchanged. All separations reported by the experiments use the
    normalised totals. *)

type kind = Counting | Queuing

type counting_protocol =
  [ `Central | `Combining | `Diffracting | `Funnel | `Network | `Sweep ]

type queuing_protocol = [ `Arrow | `Arrow_notify | `Central | `Token_ring ]

val counting_protocol_name : counting_protocol -> string
val queuing_protocol_name : queuing_protocol -> string

type summary = {
  protocol : string;
  kind : kind;
  n : int;  (** vertices in the graph. *)
  k : int;  (** number of requests. *)
  total_delay : int;  (** raw, in (possibly expanded) rounds. *)
  normalized_delay : int;  (** [total_delay * expansion]. *)
  max_delay : int;
  rounds : int;
  messages : int;
  expansion : int;
  valid : bool;  (** output met the problem specification. *)
}

val counting :
  ?tree:Countq_topology.Tree.t ->
  ?width:int ->
  graph:Countq_topology.Graph.t ->
  protocol:counting_protocol ->
  requests:int list ->
  unit ->
  summary
(** Run a counting protocol. [tree] (for [`Combining], [`Diffracting]
    and [`Funnel]) defaults to the
    BFS spanning tree rooted at 0 and (for [`Sweep]) to the arrow
    protocol's preferred spanning tree (a Hamilton path where one is
    known, which makes the sweep a single pass); [width] caps the
    balancer fan-in (the expanded step) for [`Diffracting] and
    [`Funnel], and (for [`Network]) defaults to
    [Network.default_width]. *)

val queuing :
  ?tree:Countq_topology.Tree.t ->
  graph:Countq_topology.Graph.t ->
  protocol:queuing_protocol ->
  requests:int list ->
  unit ->
  summary
(** Run a queuing protocol. [tree] (for the arrow variants and the
    token ring) defaults to [Spanning.best_for_arrow graph]. *)

type faulty_protocol = [ `Arrow | `Central_count | `Central_queue ]
(** The protocols retrofitted with fault-injection runners (the arrow
    and the two centralised baselines). *)

val faulty_protocol_name : faulty_protocol -> string

type fault_summary = {
  protocol : string;
  plan : string;  (** the fault plan's label. *)
  retry : bool;  (** whether the retransmit layer was on. *)
  expected : int;  (** requests issued. *)
  completed : int;  (** operations that completed. *)
  valid : bool;  (** completed output met the problem spec. *)
  rounds : int;
  extra_rounds : int;  (** rounds minus the fault-free baseline's. *)
  messages : int;
  extra_messages : int;  (** messages minus the baseline's. *)
  injected : Countq_simnet.Faults.stats;
  monitors : Countq_simnet.Monitor.report;
  retry_stats : Countq_simnet.Reliable.stats option;
  safe : bool;  (** every safety monitor passed. *)
  live : bool;  (** every liveness monitor passed. *)
}
(** Degradation report: the faulty run next to its fault-free baseline
    on the same instance, plus the runtime monitor verdicts. *)

val run_faulty :
  ?pool:Countq_util.Parallel.pool ->
  ?tree:Countq_topology.Tree.t ->
  ?retry:bool ->
  ?ack_timeout:int ->
  ?max_retries:int ->
  ?progress_budget:int ->
  graph:Countq_topology.Graph.t ->
  protocol:faulty_protocol ->
  plan:Countq_simnet.Faults.plan ->
  requests:int list ->
  unit ->
  fault_summary
(** Run [protocol] on [graph] under fault plan [plan] (with the
    timeout-and-retransmit layer when [retry], default false), run the
    fault-free baseline with identical parameters, and report the
    degradation. With [pool], the faulty arm and its baseline evaluate
    as two jobs on the shared pool. [tree] (for [`Arrow]) defaults to
    [Spanning.best_for_arrow graph]. *)

type churn_protocol =
  [ `Dynamic_queue | `Arrow_static | `Arrow_routed | `Central_count ]
(** The protocols comparable under a dynamic topology schedule: the
    Sharma–Busch-style dynamic queue, the unmodified arrow left to die
    on its spanning tree, the arrow over the route-repair layer, and
    the centralised counter with hop-by-hop retransmission. *)

val churn_protocol_name : churn_protocol -> string

type churn_summary = {
  c_protocol : string;
  schedule : string;  (** the {!Countq_simnet.Dynamic} schedule label. *)
  c_expected : int;  (** requests issued. *)
  c_completed : int;  (** operations that completed. *)
  c_valid : bool;  (** completed output met the problem spec. *)
  c_rounds : int;
  c_extra_rounds : int;  (** rounds minus the identity-schedule baseline's. *)
  c_messages : int;
  c_extra_messages : int;  (** messages minus the baseline's. *)
  topo : Countq_simnet.Dynamic.stats;  (** what the schedule dropped. *)
  c_monitors : Countq_simnet.Monitor.report;
  c_safe : bool;  (** every safety monitor passed. *)
  c_live : bool;  (** every liveness monitor passed. *)
  c_stalled : bool;  (** a progress monitor halted the run. *)
  route : Countq_queuing.Dynamic_queue.route_stats option;
      (** repair-layer tally; [`Arrow_routed] only. *)
  c_retry : Countq_simnet.Reliable.stats option;
      (** retransmit tally; [`Central_count] only. *)
}
(** Degradation report under a moving graph: the run under the
    adversarial schedule next to the identity-schedule baseline on the
    same instance. *)

val run_churn :
  ?pool:Countq_util.Parallel.pool ->
  ?tree:Countq_topology.Tree.t ->
  ?ack_timeout:int ->
  ?max_retries:int ->
  ?progress_budget:int ->
  graph:Countq_topology.Graph.t ->
  protocol:churn_protocol ->
  sched:Countq_simnet.Dynamic.schedule ->
  requests:int list ->
  unit ->
  churn_summary
(** Run [protocol] on [graph] under topology schedule [sched], run the
    identity-schedule baseline with identical parameters, and report
    the degradation. With [pool], the two arms evaluate as two jobs on
    the shared pool. [tree] (for the arrow variants) defaults to
    [Spanning.best_for_arrow graph]; [ack_timeout]/[max_retries] tune
    the repair and retransmit layers where present. *)

type observed_protocol =
  [ `Arrow | `Arrow_notify | `Central_count | `Central_queue | `Sweep ]
(** The protocols with full-observability runners (metrics + spans). *)

val observed_protocol_name : observed_protocol -> string

type observation = {
  o_protocol : string;
  o_kind : kind;
  completed : int;  (** operations that completed. *)
  o_valid : bool;  (** completed output met the problem spec. *)
  o_rounds : int;
  o_messages : int;
  o_total_delay : int;  (** raw, in (possibly expanded) rounds. *)
  o_expansion : int;
  metrics : Countq_simnet.Metrics.t;  (** per-node/per-edge counters. *)
  spans : Countq_simnet.Span.t list;  (** one per operation, op order. *)
  o_injected : Countq_simnet.Faults.stats option;
      (** fault tally; [None] when no plan was given. *)
}
(** One fully-observed run: the aggregate numbers every summary has,
    plus the recorder and the causal spans to drill into them. *)

val observe :
  ?tree:Countq_topology.Tree.t ->
  ?plan:Countq_simnet.Faults.plan ->
  graph:Countq_topology.Graph.t ->
  protocol:observed_protocol ->
  requests:int list ->
  unit ->
  observation
(** Run [protocol] on [graph] with a fresh {!Countq_simnet.Metrics}
    recorder and span instrumentation attached; [plan] optionally
    injects faults. [tree] (for the tree protocols) defaults to
    [Spanning.best_for_arrow graph]. Drives the [countq observe]
    subcommand and the observability experiments. *)

val best_counting :
  ?pool:Countq_util.Parallel.pool ->
  graph:Countq_topology.Graph.t ->
  requests:int list ->
  unit ->
  summary
(** The cheapest (by normalised total delay) of the counting portfolio
    on this instance — what the experiments compare against: the
    Section 3 lower bounds must sit below it, and on the separation
    topologies the arrow protocol's cost must sit below it too. The
    balancer protocols ([`Diffracting], [`Funnel]) run at the adaptive
    width ({!Countq_counting.Funnel.adaptive_width}) rather than the
    spanning tree's natural arity. With [pool], the candidates evaluate
    in parallel; [pool_map] preserves candidate order, so the result is
    identical either way. *)

val observe_many :
  ?pool:Countq_util.Parallel.pool ->
  ?tree:Countq_topology.Tree.t ->
  ?plan:Countq_simnet.Faults.plan ->
  graph:Countq_topology.Graph.t ->
  protocols:observed_protocol list ->
  requests:int list ->
  unit ->
  observation list
(** {!observe} over several protocols on the same instance, in input
    order — in parallel when [pool] is given. Each observation gets its
    own metrics recorder, so runs are independent. *)
