(** Open-loop traffic generation: latency vs offered load.

    The experiment suite's one-shot scenarios measure a {e closed}
    system — everyone requests at time 0 and the run drains. This
    module drives the {e open-loop} view a real shared counter or
    distributed queue faces: operations arrive by an exogenous process
    (Poisson, bursty, diurnal) whether or not the network has digested
    the previous ones, and the observable is the distribution of
    per-operation delay as the offered rate approaches the service
    capacity. Queuing (arrow path reversal, whose work stays near the
    moving tail) saturates far later than counting (every operation
    round-trips through one central counter), which is the paper's
    separation restated as a saturation curve.

    Workloads run on the event-driven engine over an implicit topology
    — millions of operations on a million-node graph are in scope —
    with the arrival schedule precompiled into the engine's injection
    calendar. Everything is a pure function of [(topology, workload,
    arrival, seed)]. *)

type arrival =
  | Poisson of float
      (** memoryless arrivals at the given mean ops/round (whole
          network; origins uniform). *)
  | Bursty of { rate : float; on : int; off : int }
      (** on/off process: bursts of [on] rounds at the rate that makes
          the long-run mean [rate], separated by [off] silent rounds. *)
  | Diurnal of { rate : float; period : int }
      (** sinusoidal modulation of a Poisson process with mean [rate]:
          λ(t) = rate·(1 + sin 2πt/period). *)

val arrival_label : arrival -> string
(** Stable name encoding the constructor and parameters (cache keys,
    table rows). *)

val schedule :
  seed:int64 -> arrival -> n:int -> horizon:int -> (int * int) array
(** The compiled arrival calendar: [(round, node)] pairs sorted by
    [(round, node)], rounds in [1 .. horizon], origins uniform over
    [0 .. n-1]. Deterministic in [seed]. *)

type workload =
  | Queuing  (** arrow path reversal over the implicit topology. *)
  | Counting
      (** central fetch-and-add: requests route to the centre node,
          responses route back; completion at the origin's receipt. *)
  | Funnel
      (** combining funnel on an implicit tree family
          ({!Countq_counting.Funnel} generalised to the open loop):
          same-round arrivals form a cohort that combines leaf-to-root
          over its on-path closure and decombines root-to-leaf, with
          the root folding cohort totals into one global counter —
          counts stay exact across the run. O(1) messages per op
          against the central counter's O(distance-to-centre), which
          moves the counting saturation knee. Requires a
          {!Countq_topology.Implicit.tree} topology
          (@raise Invalid_argument otherwise). *)

val workload_label : workload -> string

type summary = {
  workload : string;
  topology : string;
  arrival : string;
  horizon : int;  (** arrival window in rounds. *)
  injected : int;
  completed : int;
  unfinished : int;  (** still in flight when the run was cut off. *)
  offered : float;  (** injected / horizon, ops per round. *)
  throughput : float;  (** completed / horizon, ops per round. *)
  mean_delay : float;  (** over completed operations. *)
  p50 : float;
  p95 : float;
  p99 : float;
  max_delay : int;
  max_backlog : int;  (** peak FIFO link queue — the backpressure. *)
  peak_in_flight : int;
  touched : int;  (** nodes ever materialised. *)
  executed_rounds : int;  (** rounds actually simulated. *)
  rounds : int;  (** last round with activity. *)
  messages : int;
  saturated : bool;
      (** more than 5% of the injected operations never completed
          within the drain window — the knee of the latency curve. *)
  spans : Countq_simnet.Span.t list;
      (** one per operation when [keep_spans] was set (injection and
          completion instants; individual hops are not traced), else
          []. *)
  sketched : bool;
      (** the delay statistics ([mean_delay], [p50]/[p95]/[p99]) were
          estimated by a streaming {!Countq_util.Sketch} rather than
          computed exactly — true only for [streaming] runs whose
          completion count exceeded the sketch's exact-mode limit, and
          then accurate to {!Countq_util.Sketch.relative_error}. *)
  exemplars : (string * Countq_simnet.Span.t) list;
      (** reservoir-kept exemplar spans from a [streaming] run, tagged
          ["first"] / ["slowest"] / ["sample"] (see
          {!Countq_simnet.Telemetry.Reservoir}); [[]] otherwise. *)
}

val run :
  ?seed:int64 ->
  ?config:Countq_simnet.Engine.config ->
  ?tail:int ->
  ?center:int ->
  ?drain:int ->
  ?keep_spans:bool ->
  ?streaming:bool ->
  ?shards:int ->
  ?pool:Countq_util.Parallel.pool ->
  ?metrics:Countq_simnet.Metrics.t ->
  ?telemetry:Countq_simnet.Telemetry.t ->
  topo:Countq_topology.Implicit.t ->
  workload:workload ->
  arrival:arrival ->
  horizon:int ->
  unit ->
  summary
(** Compile the arrival schedule, run it, summarise. Arrivals land in
    rounds [1 .. horizon]; the run is cut off at [horizon + drain]
    (default [drain = horizon]), so a saturated workload reports
    [unfinished > 0] instead of running away. [tail] seeds the arrow's
    initial queue tail (default 0); [center] hosts the counter
    (default [n / 2]). [metrics] must be sized for the materialised
    twin — pass it only on instances small enough to materialise.
    [telemetry] attaches a windowed time-series recorder (any size —
    it is O(windows)).

    [streaming] (default false) folds every completion into a
    {!Countq_util.Sketch} and a {!Countq_simnet.Telemetry.Reservoir}
    as it happens instead of retaining the completion list: memory is
    O(1) in the operation count, [spans] is [[]] (and [keep_spans] is
    ignored), [exemplars] carries the reservoir's picks and [sketched]
    reports whether the percentiles are estimates. While the sketch is
    still in exact mode (small runs) the summary is bit-identical to
    the retained path's.

    [shards] (default 1) partitions the run across domains via
    {!Countq_simnet.Shard.run_implicit}; the summary is bit-identical
    for every shard count. Worker domains come from [pool]'s spare
    lanes when given, else are spawned directly (see {!Countq_simnet.Shard}).
    @raise Invalid_argument if [horizon < 1] or a node argument is out
    of range. *)

type one_shot_summary = {
  os_requests : int;
  os_completed : int;
  os_rounds : int;  (** makespan. *)
  os_messages : int;
  os_max_backlog : int;
  os_total_delay : int;  (** Eq. (1)'s inner sum (issue at time 0). *)
  os_max_delay : int;
}

val one_shot :
  ?config:Countq_simnet.Engine.config ->
  ?tail:int ->
  ?center:int ->
  ?shards:int ->
  ?pool:Countq_util.Parallel.pool ->
  ?stats:Countq_simnet.Event_engine.stats ->
  topo:Countq_topology.Implicit.t ->
  workload:workload ->
  requests:int list ->
  unit ->
  one_shot_summary
(** The closed one-shot scenario (everyone in [requests] issues at
    time 0) on the event-driven engine — the n-scaling probe. Requests
    must be strictly ascending node ids; pass [stats] to collect the
    laziness counters. [shards]/[pool] as in {!run}. *)
