module J = Countq_util.Json

type direction = [ `Lower | `Higher ]
type probe = { pname : string; value : float; dir : direction }

type verdict =
  | Within of float
  | Improved of float
  | Regressed of float
  | Unusable of string
  | Missing

type row = {
  probe : string;
  old_value : float;
  new_value : float option;
  verdict : verdict;
}

type report = {
  rows : row list;
  compared : int;
  regressions : int;
  unusable : int;
  missing : int;
}

let num_of = function
  | Some (J.Int n) -> Some (float_of_int n)
  | Some (J.Float f) -> Some f
  | _ -> None

let probes_of ~kernels_only json =
  let acc = ref [] in
  let add pname dir value = acc := { pname; value; dir } :: !acc in
  let each_in field f =
    match Option.bind (J.member field json) J.to_list with
    | None -> ()
    | Some items -> List.iter f items
  in
  if not kernels_only then
    each_in "experiments" (fun it ->
        match
          ( Option.bind (J.member "id" it) J.to_str,
            num_of (J.member "wall_seconds" it) )
        with
        | Some id, Some v -> add ("experiment " ^ id) `Lower v
        | _ -> ());
  each_in "kernels" (fun it ->
      match
        ( Option.bind (J.member "name" it) J.to_str,
          num_of (J.member "ns_per_run" it) )
      with
      | Some name, Some v -> add name `Lower v
      | _ -> ());
  if not kernels_only then begin
    let scalar path field dir name =
      match Option.bind (J.member path json) (J.member field) |> num_of with
      | Some v -> add name dir v
      | None -> ()
    in
    scalar "engine_speedup" "speedup_at_ceiling" `Higher
      "engine speedup at ceiling";
    scalar "n_scaling" "max_ns_per_message" `Lower "event-engine ns/message";
    scalar "cache_warm" "warm_speedup" `Higher "warm-cache speedup";
    scalar "explore_checker" "min_rate_ratio" `Higher "explore-checker ratio"
  end;
  List.rev !acc

(* A value can anchor a ratio only if it is a finite positive number.
   The distinction matters for the reason string: NaN in a snapshot
   means a broken probe, zero usually means a timer that never ran. *)
let usable v =
  if Float.is_nan v then Error "NaN"
  else if not (Float.is_finite v) then Error "infinite"
  else if v = 0. then Error "zero"
  else if v < 0. then Error "negative"
  else Ok v

let compare ~threshold old_probes new_probes =
  if Float.is_nan threshold || (not (Float.is_finite threshold)) || threshold < 0.
  then invalid_arg "Bench_diff.compare: threshold must be finite and >= 0";
  let worse = 1. +. (threshold /. 100.) in
  let find name =
    List.find_map
      (fun p -> if p.pname = name then Some p.value else None)
      new_probes
  in
  let compared = ref 0
  and regressions = ref 0
  and unusable = ref 0
  and missing = ref 0 in
  let rows =
    List.map
      (fun { pname; value = old_v; dir } ->
        let new_value = find pname in
        let verdict =
          match new_value with
          | None ->
              incr missing;
              Missing
          | Some new_v -> (
              match (usable old_v, usable new_v) with
              | Error why, _ ->
                  incr unusable;
                  Unusable ("baseline unusable: " ^ why)
              | Ok _, Error why ->
                  incr unusable;
                  Unusable ("candidate unusable: " ^ why)
              | Ok old_v, Ok new_v ->
                  incr compared;
                  (* ratio > 1 means worse, whichever way the probe
                     points *)
                  let ratio =
                    match dir with
                    | `Lower -> new_v /. old_v
                    | `Higher -> old_v /. new_v
                  in
                  if ratio > worse then begin
                    incr regressions;
                    Regressed ratio
                  end
                  else if ratio < 1. /. worse then Improved ratio
                  else Within ratio)
        in
        { probe = pname; old_value = old_v; new_value; verdict })
      old_probes
  in
  {
    rows;
    compared = !compared;
    regressions = !regressions;
    unusable = !unusable;
    missing = !missing;
  }

let ratio_of = function
  | Within r | Improved r | Regressed r -> Some r
  | Unusable _ | Missing -> None

let gate_failures r = r.regressions + r.unusable
