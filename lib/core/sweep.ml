(* Domain-parallel sweep runner with content-addressed caching. See
   sweep.mli. *)

module Json = Countq_util.Json
module Parallel = Countq_util.Parallel
module Rng = Countq_util.Rng

let schema = "countq-sweep/1"

type point = { name : string; eval : rng:Rng.t -> Json.t }

type stats = { points : int; hits : int; misses : int }

let no_stats = { points = 0; hits = 0; misses = 0 }

let add_stats a b =
  {
    points = a.points + b.points;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
  }

type ctx = {
  pool : Parallel.pool;
  cache : Cache.t option;
  spot_check : bool;
  spot_seed : int64;
  shards : int;
}

exception Cache_mismatch of { experiment : string; point : string }

let () =
  Printexc.register_printer (function
    | Cache_mismatch { experiment; point } ->
        Some
          (Printf.sprintf
             "Sweep.Cache_mismatch: cached result for %s point %S disagrees \
              with a fresh recompute"
             experiment point)
    | _ -> None)

let ctx ?(jobs = 1) ?pool ?cache ?(spot_check = false) ?(spot_seed = 0L)
    ?(shards = 1) () =
  if shards < 1 then invalid_arg "Sweep.ctx: shards must be >= 1";
  let pool =
    match pool with Some p -> p | None -> Parallel.pool ~jobs
  in
  { pool; cache; spot_check; spot_seed; shards }

let serial () = ctx ()
let of_option = function Some c -> c | None -> serial ()
let pool c = c.pool
let jobs c = Parallel.pool_jobs c.pool
let cache c = c.cache
let shards c = c.shards

let point ~name eval = { name; eval }

let encode_rows rows =
  Json.Arr
    (List.map
       (fun r -> Json.Arr (List.map (fun cell -> Json.Str cell) r))
       rows)

let decode_rows = function
  | Json.Arr rows -> (
      try
        Some
          (List.map
             (function
               | Json.Arr cells ->
                   List.map
                     (function Json.Str s -> s | _ -> raise Exit)
                     cells
               | _ -> raise Exit)
             rows)
      with Exit -> None)
  | _ -> None

let rows_point ~name f = { name; eval = (fun ~rng -> encode_rows (f ~rng)) }

(* The seeding discipline: every point's RNG is derived from the sweep
   seed and the point's NAME, never from evaluation order — so a point
   computes the same value whether it runs first on one domain or last
   on eight, and whether its neighbours were cache hits. The name must
   therefore encode every input of the computation. *)
let point_rng ~experiment ~seed p =
  Rng.create
    (Int64.logxor seed (Cache.seed_of (experiment ^ "\x00" ^ p.name)))

let key_of ~experiment ~seed ~config_tag p =
  Cache.fingerprint
    (String.concat "\x00"
       [ schema; experiment; Int64.to_string seed; config_tag; p.name ])

let run ?(seed = 0xc0417L) ?(config_tag = "engine:default") ?valid ctx
    ~experiment points =
  (* Duplicate names would alias in the cache and break the seeding
     discipline — refuse them up front. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.name then
        invalid_arg
          (Printf.sprintf "Sweep.run %s: duplicate point name %S" experiment
             p.name)
      else Hashtbl.replace seen p.name ())
    points;
  let key = key_of ~experiment ~seed ~config_tag in
  let lookup p =
    match ctx.cache with
    | None -> None
    | Some c -> Cache.find c ?valid ~ns:experiment ~key:(key p) ()
  in
  let cached = List.map (fun p -> (p, lookup p)) points in
  let miss_points =
    List.filter_map
      (fun (p, v) -> match v with None -> Some p | Some _ -> None)
      cached
  in
  (* Points are coarse units of work: claim them one at a time so a
     slow point never drags its chunk-mates along. *)
  let evaluated =
    Parallel.pool_map ctx.pool ~chunk:1
      (fun p -> (p.name, p.eval ~rng:(point_rng ~experiment ~seed p)))
      miss_points
  in
  (match ctx.cache with
  | None -> ()
  | Some c ->
      List.iter2
        (fun p (_, v) ->
          Cache.store c ~ns:experiment ~key:(key p) ~spec:p.name v)
        miss_points evaluated);
  let fresh = Hashtbl.create 16 in
  List.iter (fun (name, v) -> Hashtbl.replace fresh name v) evaluated;
  let results =
    List.map
      (fun (p, v) ->
        match v with Some v -> v | None -> Hashtbl.find fresh p.name)
      cached
  in
  let hit_list =
    List.filter_map
      (fun (p, v) -> match v with Some v -> Some (p, v) | None -> None)
      cached
  in
  (* The regression guard: recompute one cached point (picked by the
     spot seed, which the bench harness varies per run) and fail loudly
     if the store disagrees — the cache must never silently serve a
     wrong table. *)
  if ctx.spot_check && hit_list <> [] then begin
    let pick =
      Rng.create
        (Int64.logxor ctx.spot_seed (Cache.seed_of ("spot\x00" ^ experiment)))
    in
    let p, stored = List.nth hit_list (Rng.below pick (List.length hit_list)) in
    let recomputed = p.eval ~rng:(point_rng ~experiment ~seed p) in
    if recomputed <> stored then
      raise (Cache_mismatch { experiment; point = p.name })
  end;
  ( results,
    {
      points = List.length points;
      hits = List.length hit_list;
      misses = List.length miss_points;
    } )

let run_rows ?seed ?config_tag ctx ~experiment points =
  let valid j = decode_rows j <> None in
  let values, stats = run ?seed ?config_tag ~valid ctx ~experiment points in
  ( List.concat_map
      (fun v ->
        match decode_rows v with Some rows -> rows | None -> assert false)
      values,
    stats )
