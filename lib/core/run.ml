(* Uniform protocol drivers. See run.mli. *)

module Graph = Countq_topology.Graph
module Spanning = Countq_topology.Spanning
module Counting = Countq_counting
module Arrow = Countq_arrow
module Queuing = Countq_queuing

type kind = Counting | Queuing

type counting_protocol = [ `Central | `Combining | `Network | `Sweep ]
type queuing_protocol = [ `Arrow | `Arrow_notify | `Central | `Token_ring ]

let counting_protocol_name = function
  | `Central -> "count/central"
  | `Combining -> "count/combining"
  | `Network -> "count/network"
  | `Sweep -> "count/sweep"

let queuing_protocol_name = function
  | `Arrow -> "queue/arrow"
  | `Arrow_notify -> "queue/arrow+notify"
  | `Central -> "queue/central"
  | `Token_ring -> "queue/token-ring"

type summary = {
  protocol : string;
  kind : kind;
  n : int;
  k : int;
  total_delay : int;
  normalized_delay : int;
  max_delay : int;
  rounds : int;
  messages : int;
  expansion : int;
  valid : bool;
}

let counting ?tree ?width ~graph ~protocol ~requests () =
  let result =
    match protocol with
    | `Central -> Counting.Central.run ~graph ~requests ()
    | `Combining ->
        let tree =
          match tree with Some t -> t | None -> Spanning.bfs graph ~root:0
        in
        Counting.Combining.run ~tree ~requests ()
    | `Network -> Counting.Network.run ?width ~graph ~requests ()
    | `Sweep ->
        let tree =
          match tree with
          | Some t -> t
          | None -> Spanning.best_for_arrow graph
        in
        Counting.Sweep.run ~tree ~requests ()
  in
  {
    protocol = counting_protocol_name protocol;
    kind = Counting;
    n = Graph.n graph;
    k = List.length requests;
    total_delay = result.total_delay;
    normalized_delay = result.total_delay * result.expansion;
    max_delay = result.max_delay;
    rounds = result.rounds;
    messages = result.messages;
    expansion = result.expansion;
    valid = Result.is_ok result.valid;
  }

let queuing ?tree ~graph ~protocol ~requests () =
  let result =
    match protocol with
    | (`Arrow | `Arrow_notify) as p ->
        let tree =
          match tree with Some t -> t | None -> Spanning.best_for_arrow graph
        in
        Arrow.Protocol.run_one_shot ~tree ~notify:(p = `Arrow_notify) ~requests
          ()
    | `Central -> Queuing.Central_queue.run ~graph ~requests ()
    | `Token_ring ->
        let tree =
          match tree with Some t -> t | None -> Spanning.best_for_arrow graph
        in
        Queuing.Token_ring.run ~tree ~requests ()
  in
  {
    protocol = queuing_protocol_name protocol;
    kind = Queuing;
    n = Graph.n graph;
    k = List.length requests;
    total_delay = result.total_delay;
    normalized_delay = result.total_delay * result.expansion;
    max_delay = result.max_delay;
    rounds = result.rounds;
    messages = result.messages;
    expansion = result.expansion;
    valid = Result.is_ok result.order;
  }

module Faults = Countq_simnet.Faults
module Monitor = Countq_simnet.Monitor
module Parallel = Countq_util.Parallel

(* Evaluate two independent runs on the shared pool (the faulty arm and
   its fault-free baseline); without a pool, sequentially. *)
let pair pool f g =
  match pool with
  | None -> (f (), g ())
  | Some p -> (
      match
        Parallel.pool_map p ~chunk:1
          (fun h -> h ())
          [ (fun () -> `Fst (f ())); (fun () -> `Snd (g ())) ]
      with
      | [ `Fst a; `Snd b ] -> (a, b)
      | _ -> assert false)

type faulty_protocol = [ `Arrow | `Central_count | `Central_queue ]

let faulty_protocol_name = function
  | `Arrow -> "queue/arrow"
  | `Central_count -> "count/central"
  | `Central_queue -> "queue/central"

type fault_summary = {
  protocol : string;
  plan : string;
  retry : bool;
  expected : int;
  completed : int;
  valid : bool;
  rounds : int;
  extra_rounds : int;
  messages : int;
  extra_messages : int;
  injected : Faults.stats;
  monitors : Monitor.report;
  retry_stats : Countq_simnet.Reliable.stats option;
  safe : bool;
  live : bool;
}

let run_faulty ?pool ?tree ?(retry = false) ?ack_timeout ?max_retries
    ?progress_budget ~graph ~protocol ~plan ~requests () =
  let expected = List.length requests in
  let spanning () =
    match tree with Some t -> t | None -> Spanning.best_for_arrow graph
  in
  (* Fault-free baseline under the same configuration, so the extra_*
     columns isolate what the faults (and the retry layer) cost. *)
  let completed, valid, rounds, messages, injected, monitors, retry_stats,
      base_rounds, base_messages =
    match protocol with
    | `Arrow ->
        let tree = spanning () in
        let r, base =
          pair pool
            (fun () ->
              Arrow.Protocol.run_one_shot_faulty ~retry ?ack_timeout
                ?max_retries ?progress_budget ~plan ~tree ~requests ())
            (fun () -> Arrow.Protocol.run_one_shot ~tree ~requests ())
        in
        ( List.length r.result.outcomes,
          Result.is_ok r.result.order,
          r.result.rounds,
          r.result.messages,
          r.injected,
          r.monitors,
          r.retry,
          base.rounds,
          base.messages )
    | `Central_count ->
        let r, base =
          pair pool
            (fun () ->
              Counting.Central.run_faulty ~retry ?ack_timeout ?max_retries
                ?progress_budget ~plan ~graph ~requests ())
            (fun () -> Counting.Central.run ~graph ~requests ())
        in
        ( List.length r.result.outcomes,
          Result.is_ok r.result.valid,
          r.result.rounds,
          r.result.messages,
          r.injected,
          r.monitors,
          r.retry,
          base.rounds,
          base.messages )
    | `Central_queue ->
        let r, base =
          pair pool
            (fun () ->
              Queuing.Central_queue.run_faulty ~retry ?ack_timeout
                ?max_retries ?progress_budget ~plan ~graph ~requests ())
            (fun () -> Queuing.Central_queue.run ~graph ~requests ())
        in
        ( List.length r.result.outcomes,
          Result.is_ok r.result.order,
          r.result.rounds,
          r.result.messages,
          r.injected,
          r.monitors,
          r.retry,
          base.rounds,
          base.messages )
  in
  {
    protocol = faulty_protocol_name protocol;
    plan = Faults.label plan;
    retry;
    expected;
    completed;
    valid;
    rounds;
    extra_rounds = rounds - base_rounds;
    messages;
    extra_messages = messages - base_messages;
    injected;
    monitors;
    retry_stats;
    safe = Monitor.safety_ok monitors;
    live = Monitor.liveness_ok monitors;
  }

module Metrics = Countq_simnet.Metrics
module Span = Countq_simnet.Span

type observed_protocol =
  [ `Arrow | `Arrow_notify | `Central_count | `Central_queue | `Sweep ]

let observed_protocol_name = function
  | `Arrow -> "queue/arrow"
  | `Arrow_notify -> "queue/arrow+notify"
  | `Central_count -> "count/central"
  | `Central_queue -> "queue/central"
  | `Sweep -> "count/sweep"

type observation = {
  o_protocol : string;
  o_kind : kind;
  completed : int;
  o_valid : bool;
  o_rounds : int;
  o_messages : int;
  o_total_delay : int;
  o_expansion : int;
  metrics : Metrics.t;
  spans : Span.t list;
  o_injected : Countq_simnet.Faults.stats option;
}

let observe ?tree ?plan ~graph ~protocol ~requests () =
  let metrics = Metrics.create ~graph in
  let spanning () =
    match tree with Some t -> t | None -> Spanning.best_for_arrow graph
  in
  let o_kind, completed, o_valid, o_rounds, o_messages, o_total_delay,
      o_expansion, spans, o_injected =
    match protocol with
    | (`Arrow | `Arrow_notify) as p ->
        let r, spans, injected =
          Arrow.Protocol.run_one_shot_observed ?plan ~metrics
            ~notify:(p = `Arrow_notify) ~tree:(spanning ()) ~requests ()
        in
        ( Queuing, List.length r.outcomes, Result.is_ok r.order, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
    | `Central_queue ->
        let r, spans, injected =
          Queuing.Central_queue.run_observed ?plan ~metrics ~graph ~requests ()
        in
        ( Queuing, List.length r.outcomes, Result.is_ok r.order, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
    | `Central_count ->
        let r, spans, injected =
          Counting.Central.run_observed ?plan ~metrics ~graph ~requests ()
        in
        ( Counting, List.length r.outcomes, Result.is_ok r.valid, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
    | `Sweep ->
        let r, spans, injected =
          Counting.Sweep.run_observed ?plan ~metrics ~tree:(spanning ())
            ~requests ()
        in
        ( Counting, List.length r.outcomes, Result.is_ok r.valid, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
  in
  {
    o_protocol = observed_protocol_name protocol;
    o_kind;
    completed;
    o_valid;
    o_rounds;
    o_messages;
    o_total_delay;
    o_expansion;
    metrics;
    spans;
    o_injected;
  }

let best_counting ?pool ~graph ~requests () =
  let eval protocol = counting ~graph ~protocol ~requests () in
  let protocols = [ `Central; `Combining; `Network; `Sweep ] in
  (* pool_map preserves input order, so the sort below sees candidates
     in the same order as the sequential path — ties break identically. *)
  let candidates =
    match pool with
    | None -> List.map eval protocols
    | Some p -> Parallel.pool_map p ~chunk:1 eval protocols
  in
  match
    List.sort
      (fun (a : summary) (b : summary) ->
        compare a.normalized_delay b.normalized_delay)
      (List.filter (fun (s : summary) -> s.valid) candidates)
  with
  | best :: _ -> best
  | [] -> invalid_arg "Run.best_counting: every counting protocol failed"

let observe_many ?pool ?tree ?plan ~graph ~protocols ~requests () =
  let eval protocol = observe ?tree ?plan ~graph ~protocol ~requests () in
  match pool with
  | None -> List.map eval protocols
  | Some p -> Parallel.pool_map p ~chunk:1 eval protocols
