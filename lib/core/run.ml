(* Uniform protocol drivers. See run.mli. *)

module Graph = Countq_topology.Graph
module Spanning = Countq_topology.Spanning
module Counting = Countq_counting
module Arrow = Countq_arrow
module Queuing = Countq_queuing

type kind = Counting | Queuing

type counting_protocol =
  [ `Central | `Combining | `Diffracting | `Funnel | `Network | `Sweep ]
type queuing_protocol = [ `Arrow | `Arrow_notify | `Central | `Token_ring ]

let counting_protocol_name = function
  | `Central -> "count/central"
  | `Combining -> "count/combining"
  | `Diffracting -> "count/diffracting"
  | `Funnel -> "count/funnel"
  | `Network -> "count/network"
  | `Sweep -> "count/sweep"

let queuing_protocol_name = function
  | `Arrow -> "queue/arrow"
  | `Arrow_notify -> "queue/arrow+notify"
  | `Central -> "queue/central"
  | `Token_ring -> "queue/token-ring"

type summary = {
  protocol : string;
  kind : kind;
  n : int;
  k : int;
  total_delay : int;
  normalized_delay : int;
  max_delay : int;
  rounds : int;
  messages : int;
  expansion : int;
  valid : bool;
}

let counting ?tree ?width ~graph ~protocol ~requests () =
  let result =
    match protocol with
    | `Central -> Counting.Central.run ~graph ~requests ()
    | `Combining ->
        let tree =
          match tree with Some t -> t | None -> Spanning.bfs graph ~root:0
        in
        Counting.Combining.run ~tree ~requests ()
    | `Diffracting ->
        let tree =
          match tree with Some t -> t | None -> Spanning.bfs graph ~root:0
        in
        Counting.Diffracting.run ?width ~tree ~requests ()
    | `Funnel ->
        let tree =
          match tree with Some t -> t | None -> Spanning.bfs graph ~root:0
        in
        Counting.Funnel.run ?width ~tree ~requests ()
    | `Network -> Counting.Network.run ?width ~graph ~requests ()
    | `Sweep ->
        let tree =
          match tree with
          | Some t -> t
          | None -> Spanning.best_for_arrow graph
        in
        Counting.Sweep.run ~tree ~requests ()
  in
  {
    protocol = counting_protocol_name protocol;
    kind = Counting;
    n = Graph.n graph;
    k = List.length requests;
    total_delay = result.total_delay;
    normalized_delay = result.total_delay * result.expansion;
    max_delay = result.max_delay;
    rounds = result.rounds;
    messages = result.messages;
    expansion = result.expansion;
    valid = Result.is_ok result.valid;
  }

let queuing ?tree ~graph ~protocol ~requests () =
  let result =
    match protocol with
    | (`Arrow | `Arrow_notify) as p ->
        let tree =
          match tree with Some t -> t | None -> Spanning.best_for_arrow graph
        in
        Arrow.Protocol.run_one_shot ~tree ~notify:(p = `Arrow_notify) ~requests
          ()
    | `Central -> Queuing.Central_queue.run ~graph ~requests ()
    | `Token_ring ->
        let tree =
          match tree with Some t -> t | None -> Spanning.best_for_arrow graph
        in
        Queuing.Token_ring.run ~tree ~requests ()
  in
  {
    protocol = queuing_protocol_name protocol;
    kind = Queuing;
    n = Graph.n graph;
    k = List.length requests;
    total_delay = result.total_delay;
    normalized_delay = result.total_delay * result.expansion;
    max_delay = result.max_delay;
    rounds = result.rounds;
    messages = result.messages;
    expansion = result.expansion;
    valid = Result.is_ok result.order;
  }

module Faults = Countq_simnet.Faults
module Monitor = Countq_simnet.Monitor
module Parallel = Countq_util.Parallel

(* Evaluate two independent runs on the shared pool (the faulty arm and
   its fault-free baseline); without a pool, sequentially. *)
let pair pool f g =
  match pool with
  | None -> (f (), g ())
  | Some p -> (
      match
        Parallel.pool_map p ~chunk:1
          (fun h -> h ())
          [ (fun () -> `Fst (f ())); (fun () -> `Snd (g ())) ]
      with
      | [ `Fst a; `Snd b ] -> (a, b)
      | _ -> assert false)

type faulty_protocol = [ `Arrow | `Central_count | `Central_queue ]

let faulty_protocol_name = function
  | `Arrow -> "queue/arrow"
  | `Central_count -> "count/central"
  | `Central_queue -> "queue/central"

type fault_summary = {
  protocol : string;
  plan : string;
  retry : bool;
  expected : int;
  completed : int;
  valid : bool;
  rounds : int;
  extra_rounds : int;
  messages : int;
  extra_messages : int;
  injected : Faults.stats;
  monitors : Monitor.report;
  retry_stats : Countq_simnet.Reliable.stats option;
  safe : bool;
  live : bool;
}

let run_faulty ?pool ?tree ?(retry = false) ?ack_timeout ?max_retries
    ?progress_budget ~graph ~protocol ~plan ~requests () =
  let expected = List.length requests in
  let spanning () =
    match tree with Some t -> t | None -> Spanning.best_for_arrow graph
  in
  (* Fault-free baseline under the same configuration, so the extra_*
     columns isolate what the faults (and the retry layer) cost. *)
  let completed, valid, rounds, messages, injected, monitors, retry_stats,
      base_rounds, base_messages =
    match protocol with
    | `Arrow ->
        let tree = spanning () in
        let r, base =
          pair pool
            (fun () ->
              Arrow.Protocol.run_one_shot_faulty ~retry ?ack_timeout
                ?max_retries ?progress_budget ~plan ~tree ~requests ())
            (fun () -> Arrow.Protocol.run_one_shot ~tree ~requests ())
        in
        ( List.length r.result.outcomes,
          Result.is_ok r.result.order,
          r.result.rounds,
          r.result.messages,
          r.injected,
          r.monitors,
          r.retry,
          base.rounds,
          base.messages )
    | `Central_count ->
        let r, base =
          pair pool
            (fun () ->
              Counting.Central.run_faulty ~retry ?ack_timeout ?max_retries
                ?progress_budget ~plan ~graph ~requests ())
            (fun () -> Counting.Central.run ~graph ~requests ())
        in
        ( List.length r.result.outcomes,
          Result.is_ok r.result.valid,
          r.result.rounds,
          r.result.messages,
          r.injected,
          r.monitors,
          r.retry,
          base.rounds,
          base.messages )
    | `Central_queue ->
        let r, base =
          pair pool
            (fun () ->
              Queuing.Central_queue.run_faulty ~retry ?ack_timeout
                ?max_retries ?progress_budget ~plan ~graph ~requests ())
            (fun () -> Queuing.Central_queue.run ~graph ~requests ())
        in
        ( List.length r.result.outcomes,
          Result.is_ok r.result.order,
          r.result.rounds,
          r.result.messages,
          r.injected,
          r.monitors,
          r.retry,
          base.rounds,
          base.messages )
  in
  {
    protocol = faulty_protocol_name protocol;
    plan = Faults.label plan;
    retry;
    expected;
    completed;
    valid;
    rounds;
    extra_rounds = rounds - base_rounds;
    messages;
    extra_messages = messages - base_messages;
    injected;
    monitors;
    retry_stats;
    safe = Monitor.safety_ok monitors;
    live = Monitor.liveness_ok monitors;
  }

module Dynamic = Countq_simnet.Dynamic
module Engine = Countq_simnet.Engine
module Reliable = Countq_simnet.Reliable
module Types = Countq_arrow.Types

type churn_protocol =
  [ `Dynamic_queue | `Arrow_static | `Arrow_routed | `Central_count ]

let churn_protocol_name = function
  | `Dynamic_queue -> "queue/dynamic"
  | `Arrow_static -> "queue/arrow-static"
  | `Arrow_routed -> "queue/arrow+route"
  | `Central_count -> "count/central+retry"

type churn_summary = {
  c_protocol : string;
  schedule : string;
  c_expected : int;
  c_completed : int;
  c_valid : bool;
  c_rounds : int;
  c_extra_rounds : int;
  c_messages : int;
  c_extra_messages : int;
  topo : Dynamic.stats;
  c_monitors : Monitor.report;
  c_safe : bool;
  c_live : bool;
  c_stalled : bool;
  route : Queuing.Dynamic_queue.route_stats option;
  c_retry : Countq_simnet.Reliable.stats option;
}

(* One arm of the churn comparison: run [protocol] under [sched] and
   report what completed. The static arrow and the retrying central
   counter have no dynamic-aware runner of their own — they are run
   here directly on the engine, which is the point: the arrow is the
   victim (a fixed spanning structure under a moving graph) and the
   central counter shows what hop-by-hop retransmission alone buys. *)
let churn_arm ?tree ?ack_timeout ?max_retries ?progress_budget ~graph ~protocol
    ~sched ~requests () =
  let expected = List.length requests in
  let spanning () =
    match tree with Some t -> t | None -> Spanning.best_for_arrow graph
  in
  let chain_monitors () =
    [
      Monitor.chain_consistent
        ~op:(fun ((op : Types.op), _) -> (op.origin, op.seq))
        ~pred:(fun ((_ : Types.op), pred) ->
          match pred with
          | Types.Init -> None
          | Types.Op p -> Some (p.origin, p.seq));
      Monitor.completes ~expected;
    ]
  in
  let outcomes_of completions =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Types.op; pred; found_at = c.node; round = c.round })
      completions
  in
  match protocol with
  | `Dynamic_queue ->
      let r =
        Queuing.Dynamic_queue.run ?progress_budget ~sched ~graph ~requests ()
      in
      ( List.length r.result.outcomes,
        Result.is_ok r.result.order,
        r.result.rounds,
        r.result.messages,
        r.topo,
        r.monitors,
        None,
        None )
  | `Arrow_routed ->
      let r, route =
        Queuing.Dynamic_queue.run_arrow ?ack_timeout ?max_retries
          ?progress_budget ~sched ~graph ~tree:(spanning ()) ~requests ()
      in
      ( List.length r.result.outcomes,
        Result.is_ok r.result.order,
        r.result.rounds,
        r.result.messages,
        r.topo,
        r.monitors,
        Some route,
        None )
  | `Arrow_static ->
      (* The unmodified arrow on its spanning tree, with the schedule
         tearing at the tree links and nothing repairing them. *)
      let tree = spanning () in
      let protocol = Arrow.Protocol.one_shot_protocol ~tree ~requests () in
      let dynamic = Dynamic.start sched in
      let last_holder = ref (Countq_topology.Tree.root tree) in
      let diagnose ~round =
        Some (Dynamic.describe_cut sched ~round ~from:!last_holder)
      in
      let monitors =
        chain_monitors ()
        @ [ Monitor.progress ?budget:progress_budget ~diagnose () ]
      in
      let mon_obs = Monitor.observe monitors in
      let observer =
        {
          mon_obs with
          Engine.on_complete =
            (fun ~round ~node ~value ->
              last_holder := (fst value).Types.origin;
              mon_obs.on_complete ~round ~node ~value);
        }
      in
      let res =
        Engine.run ~dynamic ~observer ~graph:(Countq_topology.Tree.to_graph tree)
          ~config:
            (Engine.config_with_capacity
               (max 1 (Countq_topology.Tree.max_degree tree)))
          ~protocol ()
      in
      let outcomes = outcomes_of res.completions in
      ( List.length outcomes,
        Result.is_ok (Arrow.Order.chain outcomes),
        res.rounds,
        res.messages,
        Dynamic.stats dynamic,
        Monitor.finalise monitors,
        None,
        None )
  | `Central_count ->
      (* The centralised counter with hop-by-hop retransmission: every
         link heals itself, but the root stays a fixed rendezvous the
         schedule can wall off. *)
      let at = Option.value ack_timeout ~default:8 in
      let mr = Option.value max_retries ~default:5 in
      let budget =
        match progress_budget with
        | Some b -> b
        | None -> max 512 (4 * at * (1 lsl mr))
      in
      let inner = Counting.Central.one_shot_protocol ~graph ~requests () in
      let protocol, h = Reliable.wrap ~ack_timeout:at ~max_retries:mr inner in
      let dynamic = Dynamic.start sched in
      let diagnose ~round = Some (Dynamic.describe_cut sched ~round ~from:0) in
      let monitors =
        [
          Monitor.distinct_ranks ~rank:snd;
          Monitor.unique_completion ~node_of:(fun ~node:_ (who, _) -> who);
          Monitor.completes ~expected;
          Monitor.progress ~budget ~diagnose ();
        ]
      in
      let res =
        Engine.run ~dynamic ~observer:(Monitor.observe monitors)
          ~keep_alive:(Reliable.keep_alive h) ~graph
          ~config:Engine.default_config ~protocol ()
      in
      let rr = Counting.Counts.of_engine ~requests res in
      ( List.length rr.outcomes,
        Result.is_ok rr.valid,
        rr.rounds,
        rr.messages,
        Dynamic.stats dynamic,
        Monitor.finalise monitors,
        None,
        Some (Reliable.stats h) )

let run_churn ?pool ?tree ?ack_timeout ?max_retries ?progress_budget ~graph
    ~protocol ~sched ~requests () =
  let arm s () =
    churn_arm ?tree ?ack_timeout ?max_retries ?progress_budget ~graph ~protocol
      ~sched:s ~requests ()
  in
  (* The identity-schedule baseline isolates what the adversary (and
     the repair machinery's reaction to it) costs on this instance. *)
  let ( completed,
        valid,
        rounds,
        messages,
        topo,
        monitors,
        route,
        retry ),
      (_, _, base_rounds, base_messages, _, _, _, _) =
    pair pool (arm sched) (arm (Dynamic.identity graph))
  in
  {
    c_protocol = churn_protocol_name protocol;
    schedule = Dynamic.label sched;
    c_expected = List.length requests;
    c_completed = completed;
    c_valid = valid;
    c_rounds = rounds;
    c_extra_rounds = rounds - base_rounds;
    c_messages = messages;
    c_extra_messages = messages - base_messages;
    topo;
    c_monitors = monitors;
    c_safe = Monitor.safety_ok monitors;
    c_live = Monitor.liveness_ok monitors;
    c_stalled = Monitor.stalled monitors;
    route;
    c_retry = retry;
  }

module Metrics = Countq_simnet.Metrics
module Span = Countq_simnet.Span

type observed_protocol =
  [ `Arrow | `Arrow_notify | `Central_count | `Central_queue | `Sweep ]

let observed_protocol_name = function
  | `Arrow -> "queue/arrow"
  | `Arrow_notify -> "queue/arrow+notify"
  | `Central_count -> "count/central"
  | `Central_queue -> "queue/central"
  | `Sweep -> "count/sweep"

type observation = {
  o_protocol : string;
  o_kind : kind;
  completed : int;
  o_valid : bool;
  o_rounds : int;
  o_messages : int;
  o_total_delay : int;
  o_expansion : int;
  metrics : Metrics.t;
  spans : Span.t list;
  o_injected : Countq_simnet.Faults.stats option;
}

let observe ?tree ?plan ~graph ~protocol ~requests () =
  let metrics = Metrics.create ~graph in
  let spanning () =
    match tree with Some t -> t | None -> Spanning.best_for_arrow graph
  in
  let o_kind, completed, o_valid, o_rounds, o_messages, o_total_delay,
      o_expansion, spans, o_injected =
    match protocol with
    | (`Arrow | `Arrow_notify) as p ->
        let r, spans, injected =
          Arrow.Protocol.run_one_shot_observed ?plan ~metrics
            ~notify:(p = `Arrow_notify) ~tree:(spanning ()) ~requests ()
        in
        ( Queuing, List.length r.outcomes, Result.is_ok r.order, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
    | `Central_queue ->
        let r, spans, injected =
          Queuing.Central_queue.run_observed ?plan ~metrics ~graph ~requests ()
        in
        ( Queuing, List.length r.outcomes, Result.is_ok r.order, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
    | `Central_count ->
        let r, spans, injected =
          Counting.Central.run_observed ?plan ~metrics ~graph ~requests ()
        in
        ( Counting, List.length r.outcomes, Result.is_ok r.valid, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
    | `Sweep ->
        let r, spans, injected =
          Counting.Sweep.run_observed ?plan ~metrics ~tree:(spanning ())
            ~requests ()
        in
        ( Counting, List.length r.outcomes, Result.is_ok r.valid, r.rounds,
          r.messages, r.total_delay, r.expansion, spans, injected )
  in
  {
    o_protocol = observed_protocol_name protocol;
    o_kind;
    completed;
    o_valid;
    o_rounds;
    o_messages;
    o_total_delay;
    o_expansion;
    metrics;
    spans;
    o_injected;
  }

let best_counting ?pool ~graph ~requests () =
  (* The balancer protocols get their fan-in from the offered
     concurrency (the adaptive width), not from whatever degree the
     spanning tree happened to have — a star no longer forces an
     (n-1)-wide expanded step on a two-request run. *)
  let adaptive =
    Counting.Funnel.adaptive_width ~n:(Graph.n graph)
      ~concurrency:(List.length requests)
  in
  let eval protocol =
    let width =
      match protocol with
      | `Diffracting | `Funnel -> Some adaptive
      | `Central | `Combining | `Network | `Sweep -> None
    in
    counting ?width ~graph ~protocol ~requests ()
  in
  let protocols =
    [ `Central; `Combining; `Diffracting; `Funnel; `Network; `Sweep ]
  in
  (* pool_map preserves input order, so the sort below sees candidates
     in the same order as the sequential path — ties break identically. *)
  let candidates =
    match pool with
    | None -> List.map eval protocols
    | Some p -> Parallel.pool_map p ~chunk:1 eval protocols
  in
  match
    List.sort
      (fun (a : summary) (b : summary) ->
        compare a.normalized_delay b.normalized_delay)
      (List.filter (fun (s : summary) -> s.valid) candidates)
  with
  | best :: _ -> best
  | [] -> invalid_arg "Run.best_counting: every counting protocol failed"

let observe_many ?pool ?tree ?plan ~graph ~protocols ~requests () =
  let eval protocol = observe ?tree ?plan ~graph ~protocol ~requests () in
  match pool with
  | None -> List.map eval protocols
  | Some p -> Parallel.pool_map p ~chunk:1 eval protocols
