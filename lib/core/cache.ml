(* Content-addressed on-disk result cache. See cache.mli. *)

module Json = Countq_util.Json

let schema = "countq-cache/1"

(* FNV-1a, 64-bit: tiny, dependency-free, and plenty for content
   addressing a few thousand sweep points. Collisions would only ever
   serve a wrong cached value for a key that also hashed identically
   AND carried the same namespace — and the bench spot-check guard
   recomputes a sample every run precisely so nothing silent survives. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let fingerprint s = Printf.sprintf "%016Lx" (fnv64 s)
let seed_of s = fnv64 s

(* Namespace -> file name: keep it readable, never let a namespace
   escape the cache directory. *)
let sanitize ns =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    (if ns = "" then "default" else ns)

type t = {
  dir : string;
  (* ns -> (key -> value); a namespace is loaded once, on first use. *)
  tables : (string, (string, Json.t) Hashtbl.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ~dir = { dir; tables = Hashtbl.create 8; hits = 0; misses = 0 }
let dir t = t.dir
let hits t = t.hits
let misses t = t.misses

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d && parent <> "" then mkdir_p parent;
    try Sys.mkdir d 0o755 with Sys_error _ when Sys.is_directory d -> ()
  end

let file_of t ns = Filename.concat t.dir (sanitize ns ^ ".jsonl")

(* Load one namespace file. Unparseable or mis-shaped lines are
   skipped — a corrupted entry simply becomes a miss and is recomputed;
   later duplicates of a key win (append-only store). *)
let load t ns =
  match Hashtbl.find_opt t.tables ns with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.tables ns tbl;
      let path = file_of t ns in
      (if Sys.file_exists path then
         let ic = open_in path in
         (try
            while true do
              let line = input_line ic in
              match Json.of_string line with
              | Ok j -> (
                  match (Json.member "key" j, Json.member "value" j) with
                  | Some k, Some v -> (
                      match Json.to_str k with
                      | Some key -> Hashtbl.replace tbl key v
                      | None -> ())
                  | _ -> ())
              | Error _ -> ()
            done
          with End_of_file -> ());
         close_in ic);
      tbl

let find t ?(valid = fun _ -> true) ~ns ~key () =
  let tbl = load t ns in
  match Hashtbl.find_opt tbl key with
  | Some v when valid v ->
      t.hits <- t.hits + 1;
      Some v
  | Some _ ->
      (* Present but mis-shaped (e.g. a tampered or stale value that
         still parses): drop it and recompute. *)
      Hashtbl.remove tbl key;
      t.misses <- t.misses + 1;
      None
  | None ->
      t.misses <- t.misses + 1;
      None

let store t ~ns ~key ~spec value =
  let tbl = load t ns in
  Hashtbl.replace tbl key value;
  mkdir_p t.dir;
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (file_of t ns)
  in
  let line =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("key", Json.Str key);
        ("spec", Json.Str spec);
        ("value", value);
      ]
  in
  output_string oc (Json.to_string line);
  output_char oc '\n';
  close_out oc

(* ---- directory-level reporting (the [countq cache] subcommand) ---- *)

type summary = {
  namespaces : (string * int) list;
  entries : int;
  bytes : int;
}

let cache_files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
  else []

let summarize ~dir =
  let t = create ~dir in
  let namespaces =
    List.map
      (fun f ->
        let ns = Filename.chop_suffix f ".jsonl" in
        (ns, Hashtbl.length (load t ns)))
      (cache_files dir)
  in
  let bytes =
    List.fold_left
      (fun acc f ->
        let ic = open_in_bin (Filename.concat dir f) in
        let n = in_channel_length ic in
        close_in ic;
        acc + n)
      0 (cache_files dir)
  in
  {
    namespaces;
    entries = List.fold_left (fun acc (_, n) -> acc + n) 0 namespaces;
    bytes;
  }

let clear ~dir =
  let files = cache_files dir in
  List.iter (fun f -> Sys.remove (Filename.concat dir f)) files;
  List.length files
