(** Probe-by-probe comparison of two bench snapshots — the perf gate.

    Extracted from the [countq bench diff] subcommand so the verdict
    logic is testable on hand-written snapshots. The comparison is
    direction-aware (times want to go down, speedups up) and — the part
    that used to be silently wrong — {e explicit about unusable
    baselines}: a probe whose value is zero, negative, NaN or infinite
    cannot anchor a ratio, and earlier versions skipped the zero case
    without a word while letting NaN flow straight through the ratio
    (every comparison against NaN is false, so a garbage baseline
    passed the strict gate looking green). Such probes now get an
    {!Unusable} verdict carrying the reason, they are excluded from
    [compared], and the strict gate treats them as failures — a broken
    baseline should stop CI, not wave it through. *)

type direction = [ `Lower | `Higher ]
(** Which way is better: [`Lower] for timings, [`Higher] for speedups. *)

type probe = { pname : string; value : float; dir : direction }

type verdict =
  | Within of float  (** ratio moved less than the threshold. *)
  | Improved of float  (** moved past the threshold the good way. *)
  | Regressed of float  (** moved past the threshold the bad way. *)
  | Unusable of string
      (** no ratio exists: the baseline or candidate value is zero,
          negative, NaN or infinite — the reason says which. *)
  | Missing  (** the candidate snapshot has no probe of this name. *)

type row = {
  probe : string;
  old_value : float;
  new_value : float option;  (** [None] iff the verdict is {!Missing}. *)
  verdict : verdict;
}

type report = {
  rows : row list;  (** one per baseline probe, in baseline order. *)
  compared : int;  (** probes with a usable ratio. *)
  regressions : int;
  unusable : int;
  missing : int;
}

val probes_of : kernels_only:bool -> Countq_util.Json.t -> probe list
(** Extract the comparable probes from a bench snapshot: experiment
    wall-clock seconds, Bechamel kernel ns/run, and the scalar summary
    figures (engine speedup, event-engine ns/message, warm-cache
    speedup, explore-checker ratio). [kernels_only] keeps just the
    kernel probes — the low-noise set a strict gate can sit on. *)

val compare : threshold:float -> probe list -> probe list -> report
(** [compare ~threshold old_probes new_probes] walks the baseline
    probes in order. [threshold] is in percent: a ratio beyond
    [1 + threshold/100] (worse) is {!Regressed}, below its reciprocal
    is {!Improved}. Ratios are [new/old] for [`Lower] probes and
    [old/new] for [`Higher], so > 1 always means worse.
    @raise Invalid_argument if [threshold] is negative or not finite. *)

val ratio_of : verdict -> float option
(** The ratio inside {!Within}/{!Improved}/{!Regressed}, else [None]. *)

val gate_failures : report -> int
(** What a strict gate counts: [regressions + unusable]. *)
