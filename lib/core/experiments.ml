(* Paper-reproduction experiments E1-E13. See experiments.mli. *)

module Graph = Countq_topology.Graph
module Gen = Countq_topology.Gen
module Bfs = Countq_topology.Bfs
module Tree = Countq_topology.Tree
module Spanning = Countq_topology.Spanning
module Hamilton = Countq_topology.Hamilton
module Rng = Countq_util.Rng
module Arrow = Countq_arrow
module Counting = Countq_counting
module Queuing = Countq_queuing
module Tsp = Countq_tsp
module Bounds = Countq_bounds
module Multicast = Countq_multicast
module Json = Countq_util.Json

type spec = {
  id : string;
  title : string;
  paper_ref : string;
  run : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t;
}

let all_nodes n = List.init n (fun i -> i)

let seed = 0xc0417L

let sample_requests rng ~k ~n = Rng.sample rng ~k ~n

let ratio a b = if b = 0 then Float.nan else float_of_int a /. float_of_int b

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 - one concrete run, both problems, same request set.     *)

let e1_model_demo ?quick:(_ = false) () =
  let g = Gen.square_mesh 3 in
  let requests = [ 0; 4; 8 ] in
  let tree = Spanning.best_for_arrow g in
  let queue_run = Arrow.Protocol.run_one_shot ~tree ~requests () in
  let count_run =
    Counting.Combining.run ~tree:(Spanning.bfs g ~root:0) ~requests ()
  in
  let count_of v =
    List.find (fun (o : Counting.Counts.outcome) -> o.node = v)
      count_run.outcomes
  in
  let queue_of v =
    List.find (fun (o : Arrow.Types.outcome) -> o.op.origin = v)
      queue_run.outcomes
  in
  let rows =
    List.map
      (fun v ->
        let c = count_of v in
        let q = queue_of v in
        [
          Table.cell_int v;
          Table.cell_int c.count;
          Table.cell_int c.round;
          Format.asprintf "%a" Arrow.Types.pp_pred q.pred;
          Table.cell_int q.round;
        ])
      requests
  in
  let order_ok =
    match queue_run.order with Ok _ -> true | Error _ -> false
  in
  Table.make ~id:"E1" ~title:"counting vs queuing on one 3x3-mesh run"
    ~paper_ref:"Fig. 1 (model illustration), Section 2.2 specifications"
    ~headers:[ "node"; "count"; "count delay"; "pred"; "queue delay" ]
    ~notes:
      [
        Printf.sprintf "counting output valid: %s"
          (Table.cell_bool (Result.is_ok count_run.valid));
        Printf.sprintf "queuing total order valid: %s" (Table.cell_bool order_ok);
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E2: Theorem 3.5 - counting vs the n log* n floor on K_n.            *)

let e2_counting_lb_general ?quick:(quick = false) () =
  let sizes = if quick then [ 16; 32 ] else [ 16; 32; 64; 128; 256 ] in
  let rows =
    List.map
      (fun n ->
        let g = Gen.complete n in
        let best = Run.best_counting ~graph:g ~requests:(all_nodes n) () in
        let lb = Bounds.Lower.contention_lb n in
        [
          Table.cell_int n;
          best.protocol;
          Table.cell_int best.normalized_delay;
          Table.cell_int lb;
          Table.cell_float (ratio best.normalized_delay lb);
          Table.cell_bool (best.normalized_delay >= lb);
        ])
      sizes
  in
  Table.make ~id:"E2" ~title:"counting on K_n vs the Omega(n log* n) lower bound"
    ~paper_ref:"Theorem 3.5"
    ~headers:
      [ "n"; "best protocol"; "measured total"; "lower bound"; "ratio"; "measured >= bound" ]
    ~notes:
      [
        "measured = best normalised total delay across the counting portfolio, R = V";
        "the bound applies to ANY counting algorithm on ANY graph; K_n is the hardest case for it";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E3: Theorem 3.6 - high-diameter floor on the list and the mesh.     *)

let e3_counting_lb_diameter ?quick:(quick = false) ?ctx () =
  let ctx = Sweep.of_option ctx in
  (* Ceilings doubled (256 -> 512 nodes on the list, 16^2 -> 24^2 on
     the mesh) when the engine went active-set; the Theta(n^2)-round
     regime here is exactly what idle-proportional rounds pay off on. *)
  let list_sizes = if quick then [ 16; 32 ] else [ 16; 32; 64; 128; 256; 512 ] in
  let mesh_sides = if quick then [ 4; 6 ] else [ 4; 6; 8; 12; 16; 24 ] in
  let row topo g =
    let n = Graph.n g in
    let alpha = Bfs.diameter g in
    let best =
      Run.best_counting ~pool:(Sweep.pool ctx) ~graph:g
        ~requests:(all_nodes n) ()
    in
    let lb = Bounds.Lower.diameter_lb ~diameter:alpha in
    [
      topo;
      Table.cell_int n;
      Table.cell_int alpha;
      best.protocol;
      Table.cell_int best.normalized_delay;
      Table.cell_int lb;
      Table.cell_bool (best.normalized_delay >= lb);
    ]
  in
  let points =
    List.map
      (fun n ->
        Sweep.rows_point
          ~name:(Printf.sprintf "list:%d" n)
          (fun ~rng:_ -> [ row "list" (Gen.path n) ]))
      list_sizes
    @ List.map
        (fun s ->
          Sweep.rows_point
            ~name:(Printf.sprintf "mesh:%dx%d" s s)
            (fun ~rng:_ -> [ row "mesh" (Gen.square_mesh s) ]))
        mesh_sides
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E3" points in
  Table.make ~id:"E3" ~title:"counting on high-diameter graphs vs the Omega(diam^2) floor"
    ~paper_ref:"Theorem 3.6 (list: Omega(n^2); 2-D mesh: Omega(n sqrt n))"
    ~headers:
      [ "topology"; "n"; "diam"; "best protocol"; "measured total"; "(d/2)(d/2+1)/2"; "measured >= bound" ]
    rows

(* ------------------------------------------------------------------ *)
(* E4: Lemmas 3.2-3.4 - influence growth vs the tower envelope.        *)

let e4_influence_growth ?quick:(quick = false) () =
  let rounds = if quick then 4 else 7 in
  let rows =
    List.map
      (fun (r : Bounds.Influence.row) ->
        [
          Table.cell_int r.t;
          Printf.sprintf "%.4g" r.a;
          Printf.sprintf "%.4g" r.b;
          Format.asprintf "%a" Bounds.Tow.pp_tower r.tow2t;
          Table.cell_bool r.within_envelope;
        ])
      (Bounds.Influence.table ~rounds)
  in
  Table.make ~id:"E4" ~title:"influence-set recurrences vs the tow(2t) envelope"
    ~paper_ref:"Lemmas 3.2, 3.3, 3.4"
    ~headers:[ "t"; "a(t) bound"; "b(t) bound"; "tow(2t)"; "a,b <= tow(2t)" ]
    ~notes:
      [
        "a(t): how many inputs can influence one processor after t rounds; b(t): the reverse";
        "values saturate at 1e300; 'tow(j)+' marks towers beyond float range";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E5: Theorem 4.1 - arrow cost vs twice the NN TSP.                   *)

let e5_arrow_vs_tsp ?quick:(quick = false) () =
  let rng = Rng.create seed in
  let cases =
    let base =
      [
        ("list-256", Gen.path 256);
        ("mesh-16x16", Gen.square_mesh 16);
        ("hypercube-8", Gen.hypercube 8);
        ("complete-128", Gen.complete 128);
        ("pbt-2ary-h7", Gen.perfect_tree ~arity:2 ~height:7);
        ("random-tree-200", Gen.random_tree rng 200);
      ]
    in
    if quick then [ List.hd base; List.nth base 1 ] else base
  in
  let densities = if quick then [ 0.5 ] else [ 0.1; 0.5; 1.0 ] in
  let rows =
    List.concat_map
      (fun (name, g) ->
        let n = Graph.n g in
        let tree = Spanning.best_for_arrow g in
        List.map
          (fun density ->
            let k = max 1 (int_of_float (density *. float_of_int n)) in
            let requests =
              if k >= n then all_nodes n else sample_requests rng ~k ~n
            in
            let run = Arrow.Protocol.run_one_shot ~tree ~requests () in
            let tsp =
              Tsp.Nn.on_tree tree ~start:(Tree.root tree) ~requests
            in
            let bound = 2 * tsp.cost in
            [
              name;
              Table.cell_int n;
              Table.cell_int k;
              Table.cell_int run.total_delay;
              Table.cell_int tsp.cost;
              Table.cell_int bound;
              Table.cell_float (ratio run.total_delay bound);
              Table.cell_bool (run.total_delay <= bound);
            ])
          densities)
      cases
  in
  Table.make ~id:"E5" ~title:"arrow total delay vs 2 x nearest-neighbour TSP"
    ~paper_ref:"Theorem 4.1 (Herlihy-Tirthapura-Wattenhofer)"
    ~headers:
      [ "topology"; "n"; "k"; "arrow total"; "NN-TSP"; "2xTSP"; "arrow/2TSP"; "arrow <= 2xTSP" ]
    ~notes:
      [
        "arrow delays in expanded rounds (the model Theorem 4.1 is stated in); TSP from the tail";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E6: Lemma 4.3 / Fig. 2 - list tours vs 3n, with certificates.       *)

let e6_list_tsp ?quick:(quick = false) () =
  let rng = Rng.create (Int64.add seed 1L) in
  let sizes = if quick then [ 64 ] else [ 64; 256; 1024 ] in
  let rows =
    List.concat_map
      (fun n ->
        let tree = Tree.of_graph (Gen.path n) ~root:0 in
        let mk kind start requests =
          let tour = Tsp.Nn.on_tree tree ~start ~requests in
          let cert = Tsp.Runs.certify ~n ~start tour.order in
          [
            Table.cell_int n;
            kind;
            Table.cell_int (List.length requests);
            Table.cell_int tour.cost;
            Table.cell_int (Tsp.Tbounds.list_bound n);
            Table.cell_bool (tour.cost <= Tsp.Tbounds.list_bound n);
            Table.cell_int (List.length cert.runs);
            Table.cell_bool cert.lemma44_holds;
          ]
        in
        let start_adv, reqs_adv = Tsp.Nn.worst_case_on_list ~n in
        [
          mk "all" 0 (all_nodes n);
          mk "random-half" (n / 2) (sample_requests rng ~k:(n / 2) ~n);
          mk "zigzag-adversarial" start_adv reqs_adv;
        ])
      sizes
  in
  Table.make ~id:"E6" ~title:"nearest-neighbour tours on the list vs the 3n ceiling"
    ~paper_ref:"Lemma 4.3, Lemma 4.4, Fig. 2"
    ~headers:[ "n"; "request set"; "k"; "NN cost"; "3n"; "cost <= 3n"; "runs"; "Lemma 4.4" ]
    ~notes:
      [
        "'Lemma 4.4' checks x_i >= x_{i-1} + x_{i-2} on the run decomposition of the greedy tour";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E7: Theorem 4.7 / 4.12 - perfect m-ary trees stay O(n).             *)

let e7_mary_tree_tsp ?quick:(quick = false) () =
  let rng = Rng.create (Int64.add seed 2L) in
  let cases =
    if quick then [ (2, 5); (3, 3) ]
    else [ (2, 5); (2, 7); (2, 9); (3, 4); (3, 6); (4, 3); (4, 5) ]
  in
  let rows =
    List.concat_map
      (fun (arity, height) ->
        let g = Gen.perfect_tree ~arity ~height in
        let n = Graph.n g in
        let tree = Tree.of_graph g ~root:Gen.perfect_tree_root in
        let mk kind requests =
          let tour = Tsp.Nn.on_tree tree ~start:0 ~requests in
          let binary_bound =
            if arity = 2 then
              Table.cell_int (Tsp.Tbounds.perfect_binary_bound ~n)
            else "-"
          in
          [
            Table.cell_int arity;
            Table.cell_int height;
            Table.cell_int n;
            kind;
            Table.cell_int (List.length requests);
            Table.cell_int tour.cost;
            Table.cell_float (ratio tour.cost n);
            binary_bound;
          ]
        in
        [
          mk "all" (all_nodes n);
          mk "random-half" (sample_requests rng ~k:(max 1 (n / 2)) ~n);
          mk "leaves"
            (List.filter (fun v -> Tree.is_leaf tree v) (all_nodes n));
        ])
      cases
  in
  Table.make ~id:"E7" ~title:"nearest-neighbour tours on perfect m-ary trees are O(n)"
    ~paper_ref:"Theorem 4.7, Lemmas 4.8-4.10, Fig. 3; Theorem 4.12"
    ~headers:[ "m"; "height"; "n"; "request set"; "k"; "NN cost"; "cost/n"; "2d(d+1)+8n (m=2)" ]
    ~notes:[ "cost/n must stay bounded as n grows (the Theta(n) claim)" ]
    rows

(* ------------------------------------------------------------------ *)
(* E8: Corollary 4.2 - generic trees and the Rosenkrantz ratio.        *)

let e8_nn_approximation ?quick:(quick = false) () =
  let rng = Rng.create (Int64.add seed 3L) in
  let sizes = if quick then [ 64 ] else [ 64; 256; 1024 ] in
  let tree_rows =
    List.map
      (fun n ->
        let g = Gen.random_binary_tree rng n in
        let tree = Tree.of_graph g ~root:0 in
        let k = max 1 (n / 2) in
        let requests = sample_requests rng ~k ~n in
        let tour = Tsp.Nn.on_tree tree ~start:0 ~requests in
        let bound = Tsp.Tbounds.constant_degree_tree_bound ~n ~k in
        [
          "random-deg3-tree";
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int tour.cost;
          Table.cell_int bound;
          Table.cell_bool (tour.cost <= bound);
          "-";
          "-";
        ])
      sizes
  in
  let ratio_rows =
    let trials = if quick then 3 else 12 in
    List.init trials (fun i ->
        let n = 30 + (5 * i) in
        let g = Gen.random_tree rng n in
        let tree = Tree.of_graph g ~root:0 in
        let k = 10 + (i mod 4) in
        let requests = sample_requests rng ~k ~n in
        let tour = Tsp.Nn.on_tree tree ~start:0 ~requests in
        let opt = Tsp.Exact.min_path_on_tree tree ~start:0 ~requests in
        let r = ratio tour.cost opt in
        let guarantee = Tsp.Tbounds.rosenkrantz_ratio k in
        [
          "random-tree";
          Table.cell_int n;
          Table.cell_int k;
          Table.cell_int tour.cost;
          Table.cell_int opt;
          Table.cell_bool (r <= guarantee +. 1e-9);
          Table.cell_float r;
          Table.cell_float guarantee;
        ])
  in
  Table.make ~id:"E8"
    ~title:"NN tours on constant-degree trees vs O(n log k); NN/optimal ratios"
    ~paper_ref:"Corollary 4.2; Rosenkrantz-Stearns-Lewis log k approximation"
    ~headers:
      [ "instance"; "n"; "k"; "NN cost"; "bound/opt"; "within"; "NN/opt"; "guarantee" ]
    ~notes:
      [
        "tree rows compare NN against n(ceil(lg k)+1); ratio rows against Held-Karp optima";
      ]
    (tree_rows @ ratio_rows)

(* ------------------------------------------------------------------ *)
(* E9: Theorems 4.5/4.6 - the headline separation.                     *)

let e9_hamilton_separation ?quick:(quick = false) ?ctx () =
  let ctx = Sweep.of_option ctx in
  let cases =
    if quick then
      [ ("complete", [ 16; 64 ]); ("mesh", [ 16; 64 ]) ]
    else
      [
        ("complete", [ 16; 64; 256; 1024 ]);
        ("mesh", [ 16; 64; 256; 1024 ]);
        ("hypercube", [ 16; 64; 256; 1024 ]);
      ]
  in
  let graph_of topo n =
    match topo with
    | "complete" -> Gen.complete n
    | "mesh" ->
        let s = int_of_float (Float.round (sqrt (float_of_int n))) in
        Gen.square_mesh s
    | "hypercube" ->
        let rec log2 k acc = if k <= 1 then acc else log2 (k / 2) (acc + 1) in
        Gen.hypercube (log2 n 0)
    | _ -> assert false
  in
  let points =
    List.concat_map
      (fun (topo, sizes) ->
        List.map
          (fun n ->
            Sweep.rows_point
              ~name:(Printf.sprintf "%s:%d" topo n)
              (fun ~rng:_ ->
                let g = graph_of topo n in
                let n = Graph.n g in
                let requests = all_nodes n in
                let q = Run.queuing ~graph:g ~protocol:`Arrow ~requests () in
                let c =
                  Run.best_counting ~pool:(Sweep.pool ctx) ~graph:g ~requests
                    ()
                in
                [
                  [
                    topo;
                    Table.cell_int n;
                    Table.cell_int q.normalized_delay;
                    c.protocol;
                    Table.cell_int c.normalized_delay;
                    Table.cell_float
                      (ratio c.normalized_delay q.normalized_delay);
                    Table.cell_float
                      (ratio q.normalized_delay n)
                    (* queuing stays O(n): ~const *);
                  ];
                ]))
          sizes)
      cases
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E9" points in
  Table.make ~id:"E9" ~title:"queuing vs counting on Hamilton-path graphs (the separation)"
    ~paper_ref:"Theorem 4.5, Lemma 4.6; lower bounds Theorems 3.5/3.6"
    ~headers:
      [ "topology"; "n"; "arrow total"; "best counting"; "counting total"; "count/queue"; "queue/n" ]
    ~notes:
      [
        "count/queue must grow with n (counting is harder); queue/n must stay bounded (arrow is O(n))";
        "R = V; arrow runs on a Hamilton-path spanning tree per Theorem 4.5";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E10: Theorem 4.13 - high-diameter constant-degree separation.       *)

let e10_high_diameter_separation ?quick:(quick = false) ?ctx () =
  let ctx = Sweep.of_option ctx in
  let spines = if quick then [ 16; 32 ] else [ 16; 32; 64; 128; 256; 512 ] in
  let points =
    List.map
      (fun spine ->
        Sweep.rows_point
          ~name:(Printf.sprintf "caterpillar:%d" spine)
          (fun ~rng:_ ->
            let g = Gen.caterpillar ~spine ~legs:1 in
            let n = Graph.n g in
            let alpha = Bfs.diameter g in
            let requests = all_nodes n in
            let q = Run.queuing ~graph:g ~protocol:`Arrow ~requests () in
            let c =
              Run.best_counting ~pool:(Sweep.pool ctx) ~graph:g ~requests ()
            in
            let lb = Bounds.Lower.diameter_lb ~diameter:alpha in
            [
              [
                Table.cell_int spine;
                Table.cell_int n;
                Table.cell_int alpha;
                Table.cell_int q.normalized_delay;
                c.protocol;
                Table.cell_int c.normalized_delay;
                Table.cell_int lb;
                Table.cell_float (ratio c.normalized_delay q.normalized_delay);
              ];
            ]))
      spines
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E10" points in
  Table.make ~id:"E10" ~title:"separation on high-diameter constant-degree graphs"
    ~paper_ref:"Theorem 4.13 (with Theorem 3.6 and Corollary 4.2)"
    ~headers:
      [ "spine"; "n"; "diam"; "arrow total"; "best counting"; "counting total"; "diam LB"; "count/queue" ]
    ~notes:[ "caterpillar graphs: diameter Theta(n), max degree 3" ]
    rows

(* ------------------------------------------------------------------ *)
(* E11: Section 5 - the star: no separation.                           *)

let e11_star_no_separation ?quick:(quick = false) () =
  let sizes = if quick then [ 16; 32 ] else [ 16; 32; 64; 128; 256 ] in
  let rows =
    List.map
      (fun n ->
        let g = Gen.star n in
        let requests = all_nodes n in
        let c = Run.counting ~graph:g ~protocol:`Central ~requests () in
        let q_central = Run.queuing ~graph:g ~protocol:`Central ~requests () in
        let q_arrow = Run.queuing ~graph:g ~protocol:`Arrow ~requests () in
        [
          Table.cell_int n;
          Table.cell_int c.normalized_delay;
          Table.cell_int q_central.normalized_delay;
          Table.cell_int q_arrow.normalized_delay;
          Table.cell_float (ratio c.normalized_delay q_central.normalized_delay);
          Table.cell_float ~decimals:3 (ratio c.normalized_delay (n * n));
        ])
      sizes
  in
  Table.make ~id:"E11" ~title:"the star: counting and queuing are both Theta(n^2)"
    ~paper_ref:"Section 5 (conclusions)"
    ~headers:
      [ "n"; "counting total"; "central-queue total"; "arrow total"; "count/queue"; "count/n^2" ]
    ~notes:
      [
        "count/queue stays Theta(1): contention at the centre dominates both problems";
        "the arrow column uses the star itself as spanning tree (its only one), normalised by its degree";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E12: Section 1 - ordered multicast both ways.                       *)

let e12_ordered_multicast ?quick:(quick = false) ?ctx () =
  let ctx = Sweep.of_option ctx in
  let cases =
    if quick then [ (8, 16) ] else [ (8, 16); (8, 64); (16, 64); (16, 256) ]
  in
  (* The senders are sampled from the point's own name-derived RNG, so
     the (8, 64) case draws the same sample whether the (8, 16) case
     ran before it, after it, on another domain, or out of cache. *)
  let points =
    List.map
      (fun (side, k) ->
        Sweep.rows_point
          ~name:(Printf.sprintf "mesh:%d/k:%d" side k)
          (fun ~rng ->
            let g = Gen.square_mesh side in
            let n = Graph.n g in
            let senders =
              if k >= n then all_nodes n else sample_requests rng ~k ~n
            in
            List.map
              (fun scheme ->
                let r = Multicast.Ordered.run ~graph:g ~senders scheme in
                [
                  Printf.sprintf "%dx%d" side side;
                  Table.cell_int (List.length senders);
                  Format.asprintf "%a" Multicast.Ordered.pp_scheme scheme;
                  Table.cell_int r.coordination_total;
                  Table.cell_int r.coordination_makespan;
                  Table.cell_float r.mean_delivery_latency;
                  Table.cell_int r.max_delivery_latency;
                  Table.cell_int r.network_messages;
                ])
              [
                Multicast.Ordered.Via_queuing `Arrow;
                Multicast.Ordered.Via_counting `Central;
                Multicast.Ordered.Via_counting `Combining;
                Multicast.Ordered.Via_counting `Network;
              ]))
      cases
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E12" points in
  Table.make ~id:"E12" ~title:"totally ordered multicast: queuing-based vs counting-based"
    ~paper_ref:"Section 1 (Herlihy et al., Operating Systems Review 35(1))"
    ~headers:
      [ "mesh"; "senders"; "scheme"; "coord total"; "coord makespan"; "mean delivery"; "max delivery"; "messages" ]
    ~notes:
      [
        "same dissemination phase for all schemes; only the coordination label differs";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E13: long-lived arrow (Kuhn-Wattenhofer extension).                 *)

let e13_long_lived_arrow ?quick:(quick = false) ?ctx () =
  let ctx = Sweep.of_option ctx in
  let n = 64 in
  let g = Gen.square_mesh 8 in
  let tree = Spanning.best_for_arrow g in
  let rates = if quick then [ 4 ] else [ 1; 2; 4; 8; 16 ] in
  let horizon = if quick then 64 else 256 in
  (* The name encodes the horizon as well as the rate: the quick and
     full grids at the same rate are different workloads and must not
     share cache entries. Arrivals come from the point's own RNG. *)
  let points =
    List.map
      (fun per_round ->
        Sweep.rows_point
          ~name:(Printf.sprintf "rate:%d/horizon:%d" per_round horizon)
          (fun ~rng ->
        let arrivals = ref [] in
        for r = 0 to horizon - 1 do
          for _ = 1 to per_round do
            arrivals := (Rng.below rng n, r) :: !arrivals
          done
        done;
        let arrivals = !arrivals in
        let run = Arrow.Protocol.run_long_lived ~tree ~arrivals () in
        let ops = List.length run.outcomes in
        let fifo =
          (* Raymond-style reversal is not FIFO: quantify whether this
             run's order respected real time (it rarely does at load). *)
          match run.order with
          | Error _ -> "-"
          | Ok order ->
              let per_node = Array.make n [] in
              List.iter
                (fun (v, t) -> per_node.(v) <- t :: per_node.(v))
                arrivals;
              Array.iteri
                (fun v ts -> per_node.(v) <- List.sort compare ts)
                per_node;
              let issue (op : Arrow.Types.op) =
                List.nth per_node.(op.origin) op.seq
              in
              let delay =
                let tbl = Hashtbl.create 64 in
                List.iter
                  (fun (o : Arrow.Types.outcome) ->
                    Hashtbl.replace tbl o.op o.round)
                  run.outcomes;
                Hashtbl.find tbl
              in
              if
                Arrow.Order.respects_real_time ~issue
                  ~complete:(fun op -> issue op + delay op)
                  order
              then "yes"
              else "no"
        in
        let net =
          Counting.Network.run_long_lived ~graph:g ~arrivals ()
        in
        let net_ops = List.length net.outcomes in
        let net_mean =
          ratio
            (List.fold_left
               (fun acc (o : Counting.Network.long_lived_outcome) ->
                 acc + o.delay)
               0 net.outcomes)
            net_ops
        in
        let net_max =
          List.fold_left
            (fun acc (o : Counting.Network.long_lived_outcome) ->
              max acc o.delay)
            0 net.outcomes
        in
        let central = Counting.Central.run_long_lived ~graph:g ~arrivals () in
        let central_ops = List.length central.outcomes in
        let central_mean =
          ratio
            (List.fold_left
               (fun acc (o : Counting.Central.long_lived_outcome) ->
                 acc + o.delay)
               0 central.outcomes)
            central_ops
        in
        let central_max =
          List.fold_left
            (fun acc (o : Counting.Central.long_lived_outcome) ->
              max acc o.delay)
            0 central.outcomes
        in
        [
          [
            Table.cell_int per_round;
            "queue/arrow";
            Table.cell_int ops;
            Table.cell_int run.rounds;
            Table.cell_float (ratio run.total_delay ops);
            Table.cell_int run.max_delay;
            Table.cell_bool (Result.is_ok run.order);
            fifo;
          ];
          [
            Table.cell_int per_round;
            "count/network";
            Table.cell_int net_ops;
            Table.cell_int net.rounds;
            Table.cell_float net_mean;
            Table.cell_int net_max;
            Table.cell_bool net.counts_exact;
            "-";
          ];
          [
            Table.cell_int per_round;
            "count/central";
            Table.cell_int central_ops;
            Table.cell_int central.rounds;
            Table.cell_float central_mean;
            Table.cell_int central_max;
            Table.cell_bool central.counts_exact;
            "-";
          ];
        ]))
      rates
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E13" points in
  Table.make ~id:"E13" ~title:"long-lived coordination under staggered arrivals"
    ~paper_ref:"Kuhn-Wattenhofer SPAA'04 (the paper's related work [8]); extension"
    ~headers:
      [ "arrivals/round"; "protocol"; "ops"; "makespan"; "mean delay"; "max delay"; "valid"; "FIFO" ]
    ~notes:
      [
        "uniform random arrival nodes on an 8x8 mesh over a fixed horizon";
        "arrow: the order stays one chain but is famously not FIFO under load;";
        "counting network and central counter (long-lived): ranks stay exactly {1..m}, at much";
        "higher and load-growing delay - the long-lived face of the separation";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E14: ablation - arbitration policy. The model lets an adversary
   schedule which pending message a node absorbs; the engine's default
   is fair round-robin. How much does the policy move the totals?      *)

let e14_arbiter_ablation ?quick:(quick = false) () =
  let module Engine = Countq_simnet.Engine in
  let sizes = if quick then [ 32 ] else [ 32; 64; 128 ] in
  let policies =
    [
      ("round-robin", Engine.Round_robin);
      ("lowest-sender-first", Engine.Lowest_sender_first);
      ( "highest-sender-first",
        Engine.Custom
          (fun ~round:_ ~node:_ ~candidates ->
            List.fold_left max (List.hd candidates) candidates) );
    ]
  in
  let rows =
    List.concat_map
      (fun n ->
        let g = Gen.star n in
        let requests = all_nodes n in
        List.map
          (fun (name, arbiter) ->
            let config = { Engine.default_config with arbiter } in
            let r = Counting.Central.run ~config ~graph:g ~requests () in
            [
              Table.cell_int n;
              name;
              Table.cell_int r.total_delay;
              Table.cell_int r.max_delay;
              Table.cell_int r.rounds;
              Table.cell_bool (Result.is_ok r.valid);
            ])
          policies)
      sizes
  in
  Table.make ~id:"E14" ~title:"ablation: message-arbitration policy (star, central counting)"
    ~paper_ref:"Section 2.1 model discussion (scheduling adversary)"
    ~headers:[ "n"; "arbiter"; "total"; "max delay"; "rounds"; "valid" ]
    ~notes:
      [
        "totals are schedule-invariant here (every request must cross the centre once);";
        "the policy only redistributes which node waits - max delay and fairness change, correctness never";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E15: ablation - counting-network width. Wider networks cut output
   contention but deepen the pipeline; the sweet spot moves with k.    *)

let e15_network_width_ablation ?quick:(quick = false) () =
  let widths = if quick then [ 1; 8 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  let n = 64 in
  let g = Gen.complete n in
  let requests = all_nodes n in
  let rows =
    List.map
      (fun width ->
        let r = Counting.Network.run ~width ~graph:g ~requests () in
        let net = Counting.Bitonic.create ~width in
        [
          Table.cell_int width;
          Table.cell_int (Counting.Bitonic.depth net);
          Table.cell_int (Counting.Bitonic.size net);
          Table.cell_int r.total_delay;
          Table.cell_int r.max_delay;
          Table.cell_int r.rounds;
          Table.cell_int r.messages;
          Table.cell_bool (Result.is_ok r.valid);
        ])
      widths
  in
  Table.make ~id:"E15" ~title:"ablation: bitonic network width on K_64, R = V"
    ~paper_ref:"Aspnes-Herlihy-Shavit counting networks (the paper's [1])"
    ~headers:
      [ "width"; "depth"; "balancers"; "total"; "max"; "rounds"; "messages"; "valid" ]
    ~notes:
      [
        "width 1 degenerates to a central counter; large widths trade contention for pipeline depth";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E16: ablation - the arrow protocol's spanning tree. Theorem 4.5
   wants a Hamilton path; what happens on BFS/DFS trees instead?       *)

let e16_arrow_tree_ablation ?quick:(quick = false) () =
  let rng = Rng.create (Int64.add seed 6L) in
  let cases =
    if quick then [ ("mesh-8x8", Gen.square_mesh 8) ]
    else
      [
        ("mesh-16x16", Gen.square_mesh 16);
        ("complete-256", Gen.complete 256);
        ("hypercube-8", Gen.hypercube 8);
      ]
  in
  let rows =
    List.concat_map
      (fun (name, g) ->
        let n = Graph.n g in
        let requests = sample_requests rng ~k:(n / 2) ~n in
        let trees =
          [
            ("hamilton-path", Spanning.best_for_arrow g);
            ("bfs-tree", Spanning.bfs g ~root:0);
            ("dfs-tree", Spanning.dfs g ~root:0);
          ]
        in
        List.map
          (fun (tree_name, tree) ->
            let r = Arrow.Protocol.run_one_shot ~tree ~requests () in
            let tsp = Tsp.Nn.on_tree tree ~start:(Tree.root tree) ~requests in
            [
              name;
              tree_name;
              Table.cell_int (Tree.max_degree tree);
              Table.cell_int r.total_delay;
              Table.cell_int (r.total_delay * r.expansion);
              Table.cell_int (2 * tsp.cost);
              Table.cell_bool (r.total_delay <= 2 * tsp.cost);
              Table.cell_bool (Result.is_ok r.order);
            ])
          trees)
      cases
  in
  Table.make ~id:"E16" ~title:"ablation: arrow spanning-tree choice (random half requests)"
    ~paper_ref:"Theorem 4.5 (Hamilton path) vs Corollary 4.2 (any constant-degree tree)"
    ~headers:
      [ "topology"; "tree"; "degree"; "arrow total"; "normalised"; "2xTSP"; "<= 2xTSP"; "valid" ]
    ~notes:
      [
        "the Theorem 4.1 bound holds on every tree; the Hamilton path minimises the normalised cost";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E17: ablation - notify overhead. Applications that need the origin
   to learn its predecessor (ordered multicast) pay a return leg.      *)

let e17_notify_overhead ?quick:(quick = false) () =
  let cases =
    if quick then [ ("mesh-8x8", Gen.square_mesh 8) ]
    else
      [
        ("list-256", Gen.path 256);
        ("mesh-16x16", Gen.square_mesh 16);
        ("complete-128", Gen.complete 128);
        ("pbt-2ary-h7", Gen.perfect_tree ~arity:2 ~height:7);
      ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let n = Graph.n g in
        let requests = all_nodes n in
        let tree = Spanning.best_for_arrow g in
        let plain = Arrow.Protocol.run_one_shot ~tree ~requests () in
        let notified =
          Arrow.Protocol.run_one_shot ~tree ~notify:true ~requests ()
        in
        [
          name;
          Table.cell_int n;
          Table.cell_int plain.total_delay;
          Table.cell_int notified.total_delay;
          Table.cell_float (ratio notified.total_delay plain.total_delay);
          Table.cell_int plain.messages;
          Table.cell_int notified.messages;
          Table.cell_bool
            (Result.is_ok plain.order && Result.is_ok notified.order);
        ])
      cases
  in
  Table.make ~id:"E17" ~title:"ablation: arrow notification leg (R = V)"
    ~paper_ref:"Section 4 delay semantics vs the Section 1 application's needs"
    ~headers:
      [ "topology"; "n"; "plain total"; "notify total"; "ratio"; "plain msgs"; "notify msgs"; "valid" ]
    ~notes:
      [
        "the notify leg routes each answer back to its origin along the tree: delay and messages grow by a topology-dependent constant";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E18: the asynchronous model (Section 2.1's closing discussion) -
   safety survives arbitrary link delays; cost degrades gracefully
   with jitter for queuing and counting alike.                         *)

let e18_async_sensitivity ?quick:(quick = false) () =
  let module Async = Countq_simnet.Async in
  let side = if quick then 6 else 10 in
  let g = Gen.square_mesh side in
  let n = Graph.n g in
  let requests = all_nodes n in
  let tree = Spanning.best_for_arrow g in
  let delays =
    [
      ("constant-1", Async.Constant 1);
      ("constant-4", Async.Constant 4);
      ("uniform-1-4", Async.Uniform { min = 1; max = 4; seed = 0xa5L });
      ("uniform-1-16", Async.Uniform { min = 1; max = 16; seed = 0xa5L });
      ( "adversarial",
        Async.Per_message
          (fun ~src ~dst ~send_time -> 1 + ((src + (7 * dst) + send_time) mod 16)) );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, delay) ->
        let q = Arrow.Protocol.run_one_shot_async ~delay ~tree ~requests () in
        let c = Counting.Central.run_async ~delay ~graph:g ~requests () in
        [
          [
            name;
            "queue/arrow";
            Table.cell_int q.total_delay;
            Table.cell_int q.max_delay;
            Table.cell_int q.rounds;
            Table.cell_bool (Result.is_ok q.order);
          ];
          [
            name;
            "count/central";
            Table.cell_int c.total_delay;
            Table.cell_int c.max_delay;
            Table.cell_int c.rounds;
            Table.cell_bool (Result.is_ok c.valid);
          ];
        ])
      delays
  in
  Table.make ~id:"E18"
    ~title:
      (Printf.sprintf "asynchronous execution on a %dx%d mesh (R = V)" side side)
    ~paper_ref:"Section 2.1 (the general asynchronous model)"
    ~headers:[ "link delays"; "protocol"; "total"; "max"; "finish"; "valid" ]
    ~notes:
      [
        "safety (total order / exact count set) must hold under every delay model;";
        "queuing keeps beating counting as jitter grows - the separation is not a lockstep artefact";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E19: fetch&add - the Section 5 open question's direction: a
   strictly stronger problem than counting at (here) identical cost.   *)

let e19_fetch_add ?quick:(quick = false) () =
  let module FA = Counting.Fetch_add in
  let rng = Rng.create (Int64.add seed 7L) in
  let sizes = if quick then [ 16; 64 ] else [ 16; 64; 256 ] in
  let rows =
    List.concat_map
      (fun n ->
        let g = Gen.complete n in
        let tree = Spanning.bfs g ~root:0 in
        let requests =
          List.map (fun v -> (v, 1 + Rng.below rng 9)) (all_nodes n)
        in
        let counting_requests = all_nodes n in
        let fa_central = FA.run_central ~graph:g ~requests () in
        let c_central =
          Counting.Central.run ~graph:g ~requests:counting_requests ()
        in
        let fa_comb = FA.run_combining ~tree ~requests () in
        let c_comb =
          Counting.Combining.run ~tree ~requests:counting_requests ()
        in
        [
          [
            Table.cell_int n;
            "central";
            Table.cell_int fa_central.total_delay;
            Table.cell_int c_central.total_delay;
            Table.cell_bool (fa_central.total_delay = c_central.total_delay);
            Table.cell_bool (Result.is_ok fa_central.valid);
          ];
          [
            Table.cell_int n;
            "combining";
            Table.cell_int fa_comb.total_delay;
            Table.cell_int c_comb.total_delay;
            Table.cell_bool (fa_comb.total_delay = c_comb.total_delay);
            Table.cell_bool (Result.is_ok fa_comb.valid);
          ];
        ])
      sizes
  in
  Table.make ~id:"E19" ~title:"fetch&add vs counting: same structure, same delay"
    ~paper_ref:"Section 5 open question; reference [5] (adding networks)"
    ~headers:
      [ "n"; "protocol"; "fetch&add total"; "counting total"; "equal"; "valid" ]
    ~notes:
      [
        "random increments in 1..9; returning prefix sums instead of ranks costs nothing extra";
        "in these tree/central structures - the coordination, not the payload, is the bottleneck";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E20: ablation - bitonic vs periodic counting networks.              *)

let e20_network_families ?quick:(quick = false) () =
  let widths = if quick then [ 4; 8 ] else [ 2; 4; 8; 16; 32 ] in
  let n = 64 in
  let g = Gen.complete n in
  let requests = all_nodes n in
  let rows =
    List.concat_map
      (fun width ->
        let make name net =
          let r = Counting.Network.run ~net ~graph:g ~requests () in
          [
            Table.cell_int width;
            name;
            Table.cell_int (Counting.Bitonic.depth net);
            Table.cell_int (Counting.Bitonic.size net);
            Table.cell_int r.total_delay;
            Table.cell_int r.rounds;
            Table.cell_int r.messages;
            Table.cell_bool (Result.is_ok r.valid);
          ]
        in
        [
          make "bitonic" (Counting.Bitonic.create ~width);
          make "periodic" (Counting.Periodic.create ~width);
        ])
      widths
  in
  Table.make ~id:"E20" ~title:"ablation: bitonic vs periodic counting networks (K_64, R = V)"
    ~paper_ref:"reference [1]: Aspnes-Herlihy-Shavit, both constructions"
    ~headers:
      [ "width"; "family"; "depth"; "balancers"; "total"; "rounds"; "messages"; "valid" ]
    ~notes:
      [
        "periodic trades ~2x depth/balancers for a regular repeating structure; both count correctly";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E21: the Section 2.1 simulation claim, measured - running a tree
   protocol in the strict base model (1 msg/round) costs at most the
   expanded-step width times its expanded-step cost.                   *)

let e21_expansion_soundness ?quick:(quick = false) () =
  let module Engine = Countq_simnet.Engine in
  let cases =
    if quick then [ ("mesh-8x8", Gen.square_mesh 8) ]
    else
      [
        ("mesh-16x16", Gen.square_mesh 16);
        ("pbt-2ary-h7", Gen.perfect_tree ~arity:2 ~height:7);
        ("caterpillar-64", Gen.caterpillar ~spine:64 ~legs:1);
        ("complete-128", Gen.complete 128);
      ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let n = Graph.n g in
        let requests = all_nodes n in
        let tree = Spanning.best_for_arrow g in
        let c = max 1 (Tree.max_degree tree) in
        let expanded = Arrow.Protocol.run_one_shot ~tree ~requests () in
        let base =
          Arrow.Protocol.run_one_shot ~config:Engine.default_config ~tree
            ~requests ()
        in
        [
          name;
          Table.cell_int n;
          Table.cell_int c;
          Table.cell_int expanded.total_delay;
          Table.cell_int base.total_delay;
          Table.cell_int (c * expanded.total_delay);
          Table.cell_bool (base.total_delay <= c * expanded.total_delay);
          Table.cell_bool
            (Result.is_ok base.order && Result.is_ok expanded.order);
        ])
      cases
  in
  Table.make ~id:"E21"
    ~title:"expanded-step soundness: arrow in the strict base model (R = V)"
    ~paper_ref:"Section 2.1 (simulating a capacity-c step by c base steps)"
    ~headers:
      [ "topology"; "n"; "c"; "expanded total"; "base total"; "c x expanded"; "base <= c x exp"; "valid" ]
    ~notes:
      [
        "the normalisation rule used throughout (multiply expanded delays by c) is an upper";
        "bound on true base-model cost - this table shows the slack is real but bounded";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E22: beyond the paper's named families - the separation on other
   classic constant-degree interconnection networks. The counting
   lower bound (Thm 3.5) applies to every graph; queuing stays
   O(n log n) on any constant-degree spanning tree (Cor 4.2), so the
   gap should appear here too even without a Hamilton-path proof.      *)

let e22_other_networks ?quick:(quick = false) () =
  let rng = Rng.create (Int64.add seed 8L) in
  let cases =
    if quick then [ ("de-bruijn-6", Gen.de_bruijn 6) ]
    else
      [
        ("de-bruijn-8", Gen.de_bruijn 8);
        ("ccc-5", Gen.cube_connected_cycles 5);
        ("butterfly-5", Gen.butterfly 5);
        ("random-4-regular-200", Gen.random_regular rng ~n:200 ~degree:4);
        ("torus-16x16", Gen.torus ~dims:[ 16; 16 ]);
      ]
  in
  let rows =
    List.map
      (fun (name, g) ->
        let n = Graph.n g in
        let requests = all_nodes n in
        let tree = Spanning.best_for_arrow g in
        let q = Run.queuing ~tree ~graph:g ~protocol:`Arrow ~requests () in
        let c = Run.best_counting ~graph:g ~requests () in
        [
          name;
          Table.cell_int n;
          Table.cell_int (Graph.max_degree g);
          Table.cell_int (Tree.max_degree tree);
          Table.cell_int q.normalized_delay;
          c.protocol;
          Table.cell_int c.normalized_delay;
          Table.cell_float (ratio c.normalized_delay q.normalized_delay);
          Table.cell_bool (q.valid && c.valid);
        ])
      cases
  in
  Table.make ~id:"E22"
    ~title:"the separation on other constant-degree interconnection networks"
    ~paper_ref:"Theorem 3.5 + Corollary 4.2 (beyond the named families)"
    ~headers:
      [ "network"; "n"; "deg"; "tree deg"; "arrow total"; "best counting"; "counting total"; "count/queue"; "valid" ]
    ~notes:
      [
        "spanning trees from the DFS/BFS fallback (no Hamilton-path construction is known here);";
        "the measured gap matches the paper's picture even outside its proved families";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E23: observed influence sets - Section 3's A(i, t) replayed on real
   executions. Counting must aggregate knowledge of all of R (its
   maximum influence set reaches |R|); queuing's stays O(1).           *)

let e23_observed_influence ?quick:(quick = false) () =
  let module Observed = Bounds.Observed in
  let module Engine = Countq_simnet.Engine in
  let cases =
    if quick then [ ("complete-32", Gen.complete 32) ]
    else
      [
        ("complete-64", Gen.complete 64);
        ("mesh-8x8", Gen.square_mesh 8);
        ("list-64", Gen.path 64);
      ]
  in
  let rng = Rng.create (Int64.add seed 9L) in
  let rows =
    List.concat_map
      (fun (name, g) ->
        let n = Graph.n g in
        (* Half density: queue() messages travel real distances, so the
           arrow's influence growth gets every chance to show itself. *)
        let requests = sample_requests rng ~k:(n / 2) ~n in
        let k = List.length requests in
        let tree = Spanning.best_for_arrow g in
        let _, arrow_events =
          Arrow.Protocol.run_one_shot_traced ~config:Engine.default_config
            ~tree ~requests ()
        in
        let _, counting_events =
          Counting.Central.run_traced ~graph:g ~requests ()
        in
        let describe proto events =
          let growth = Observed.of_trace ~n events in
          let final = growth.max_influence.(growth.rounds) in
          [
            name;
            Table.cell_int n;
            Table.cell_int k;
            proto;
            Table.cell_int growth.rounds;
            Table.cell_int final;
            Table.cell_bool (Observed.within_envelope growth);
          ]
        in
        [
          describe "queue/arrow" arrow_events;
          describe "count/central" counting_events;
        ])
      cases
  in
  Table.make ~id:"E23"
    ~title:"observed influence sets A(i,t): local queuing vs global counting"
    ~paper_ref:"Section 3 (Definitions 3.1-3.3, Lemma 3.4), measured on real runs"
    ~headers:
      [ "topology"; "n"; "k"; "protocol"; "rounds"; "max |A(i,t)| at end"; "within tow(2t)" ]
    ~notes:
      [
        "base-model runs (capacity 1); message snapshots replayed exactly (FIFO per link)";
        "counting's influence must reach |R| = k (some node outputs count k); the arrow's stays";
        "tiny - the information-theoretic heart of why counting is harder, visible in the traces";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E24: queuing-protocol ablation - the arrow vs the folk baselines it
   displaced (central queue, circulating token), across load levels.   *)

let e24_queuing_ablation ?quick:(quick = false) () =
  let rng = Rng.create (Int64.add seed 10L) in
  let cases =
    if quick then [ ("mesh-8x8", Gen.square_mesh 8) ]
    else
      [
        ("mesh-16x16", Gen.square_mesh 16);
        ("pbt-2ary-h7", Gen.perfect_tree ~arity:2 ~height:7);
        ("complete-128", Gen.complete 128);
      ]
  in
  let densities = if quick then [ 0.05; 1.0 ] else [ 0.02; 0.25; 1.0 ] in
  let rows =
    List.concat_map
      (fun (name, g) ->
        let n = Graph.n g in
        List.concat_map
          (fun density ->
            let k = max 1 (int_of_float (density *. float_of_int n)) in
            let requests =
              if k >= n then all_nodes n else sample_requests rng ~k ~n
            in
            List.map
              (fun protocol ->
                let s = Run.queuing ~graph:g ~protocol ~requests () in
                [
                  name;
                  Table.cell_int n;
                  Table.cell_int k;
                  s.protocol;
                  Table.cell_int s.normalized_delay;
                  Table.cell_int s.max_delay;
                  Table.cell_int s.messages;
                  Table.cell_bool s.valid;
                ])
              [ `Arrow; `Central; `Token_ring ])
          densities)
      cases
  in
  Table.make ~id:"E24" ~title:"queuing-protocol ablation: arrow vs the folk baselines"
    ~paper_ref:"Raymond TOCS'89 motivation; Section 4"
    ~headers:
      [ "topology"; "n"; "k"; "protocol"; "normalised total"; "max"; "messages"; "valid" ]
    ~notes:
      [
        "token ring pays a full Euler walk regardless of load; the central queue concentrates";
        "contention; the arrow adapts to locality - the reason Raymond's tree algorithm exists";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E25: measured growth exponents - fit cost ~ c n^e on sweeps and
   compare e against the theorems' predictions. The separations become
   a single number: counting's exponent strictly exceeds queuing's.    *)

let e25_growth_exponents ?quick:(quick = false) ?ctx () =
  let ctx = Sweep.of_option ctx in
  (* Full-mode ceilings doubled with the active-set engine: longer
     sweeps pin the fitted exponents down harder. *)
  let list_sizes =
    if quick then [ 32; 64; 128 ] else [ 64; 128; 256; 512; 1024 ]
  in
  let mesh_sides = if quick then [ 6; 8; 10 ] else [ 8; 12; 16; 20; 30 ] in
  let kn_sizes = if quick then [ 32; 64; 128 ] else [ 64; 128; 256; 512; 1024 ] in
  let star_sizes = if quick then [ 32; 64; 128 ] else [ 32; 64; 128; 256; 512 ] in
  (* One sweep point per (family, size): its value is the raw
     (n, queue total, count total) triple, so the power-law fits below
     always see the whole series whether the points came from the pool
     or the cache. The mesh is named by its side, which determines n. *)
  let families =
    [
      ("list", List.map (fun n -> (n, fun () -> Gen.path n)) list_sizes);
      ("mesh", List.map (fun s -> (s, fun () -> Gen.square_mesh s)) mesh_sides);
      ("complete", List.map (fun n -> (n, fun () -> Gen.complete n)) kn_sizes);
      ("star", List.map (fun n -> (n, fun () -> Gen.star n)) star_sizes);
    ]
  in
  let point_name family param = Printf.sprintf "%s:%d" family param in
  let points =
    List.concat_map
      (fun (family, cases) ->
        List.map
          (fun (param, mk) ->
            Sweep.point ~name:(point_name family param) (fun ~rng:_ ->
                let g = mk () in
                let n = Graph.n g in
                let requests = all_nodes n in
                let q = Run.queuing ~graph:g ~protocol:`Arrow ~requests () in
                let c =
                  Run.best_counting ~pool:(Sweep.pool ctx) ~graph:g ~requests
                    ()
                in
                Json.Arr
                  [
                    Json.Int n;
                    Json.Int q.normalized_delay;
                    Json.Int c.normalized_delay;
                  ]))
          cases)
      families
  in
  let valid = function
    | Json.Arr [ Json.Int _; Json.Int _; Json.Int _ ] -> true
    | _ -> false
  in
  let values, _stats = Sweep.run ~valid ctx ~experiment:"E25" points in
  let by_name = Hashtbl.create 32 in
  List.iter2
    (fun name v -> Hashtbl.replace by_name name v)
    (List.concat_map
       (fun (family, cases) ->
         List.map (fun (param, _) -> point_name family param) cases)
       families)
    values;
  let series_of family =
    let cases = List.assoc family families in
    List.map
      (fun (param, _) ->
        match Hashtbl.find by_name (point_name family param) with
        | Json.Arr [ Json.Int n; Json.Int q; Json.Int c ] -> (n, q, c)
        | _ -> assert false)
      cases
  in
  let row family ~queue_predicted ~count_predicted =
    let series = series_of family in
    let qfit =
      Growth.fit_power_law (List.map (fun (n, q, _) -> (n, q)) series)
    in
    let cfit =
      Growth.fit_power_law (List.map (fun (n, _, c) -> (n, c)) series)
    in
    (* Queuing exponents come from upper-bound theorems: two-sided
       check. Counting exponents come from lower bounds: the fit must
       not undercut the prediction (exceeding it is consistent - e.g.
       the best measured counting on moderate meshes is the sweep's n^2,
       above the Omega(n^1.5) floor). *)
    let queue_ok = abs_float (qfit.exponent -. queue_predicted) <= 0.25 in
    let count_ok = cfit.exponent >= count_predicted -. 0.1 in
    [
      family;
      Printf.sprintf "%d sizes" (List.length series);
      Format.asprintf "%a" Growth.pp_fit qfit;
      Table.cell_float queue_predicted;
      Format.asprintf "%a" Growth.pp_fit cfit;
      Table.cell_float count_predicted;
      Table.cell_bool (queue_ok && count_ok);
      (* On K_n the proven gap is log* n - sub-polynomial - so even a
         small exponent excess counts as separation. The star is the
         paper's proven NON-separation, so "no" there is the expected
         answer, not a failing check. *)
      (if cfit.exponent > qfit.exponent +. 0.05 then "yes"
       else "no (as proven)");
    ]
  in
  let rows =
    [
      row "list" ~queue_predicted:1.0 ~count_predicted:2.0;
      row "mesh" ~queue_predicted:1.0 ~count_predicted:1.5;
      row "complete" ~queue_predicted:1.0 ~count_predicted:1.1
      (* n log* n: indistinguishable from ~n^1.1 at these scales *);
      row "star" ~queue_predicted:2.0 ~count_predicted:2.0
      (* the non-separation: both quadratic *);
    ]
  in
  Table.make ~id:"E25" ~title:"measured growth exponents vs the theorems"
    ~paper_ref:"Theorems 3.5/3.6/4.5/4.13 and Section 5, as fitted exponents"
    ~headers:
      [ "family"; "series"; "queue fit"; "queue e*"; "count fit"; "count e* (floor)"; "fits consistent"; "count > queue" ]
    ~notes:
      [
        "cost ~ c n^e fitted by least squares in log-log space over R = V sweeps;";
        "e* = predicted exponent; 'count > queue' is the separation in exponent form";
        "(on the star both are ~2 and it correctly reads NO - see the 'fits match' column instead)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E26: exhaustive schedule verification - model-check safety on every
   interleaving of small instances (the property tests only sample).   *)

let e26_exhaustive_verification ?quick:(quick = false) () =
  let module Explore = Countq_simnet.Explore in
  let module Engine = Countq_simnet.Engine in
  let zero_stats =
    { Explore.explored = 0; terminal = 0; max_frontier = 0; dedup_hits = 0 }
  in
  let verdict_of = function
    | Explore.Exhaustive stats -> ("all schedules safe", stats)
    | Explore.Budget_exhausted stats -> ("budget exhausted (partial)", stats)
  in
  let arrow_case name g requests =
    let tree = Spanning.best_for_arrow g in
    let protocol = Arrow.Protocol.one_shot_protocol ~tree ~requests () in
    let check completions =
      let outcomes =
        List.map
          (fun (c : _ Engine.completion) ->
            let op, pred = c.value in
            { Arrow.Types.op; pred; found_at = c.node; round = c.round })
          completions
      in
      if List.length outcomes <> List.length requests then
        Error "wrong completion count"
      else
        match Arrow.Order.chain outcomes with
        | Ok _ -> Ok ()
        | Error e -> Error (Format.asprintf "%a" Arrow.Order.pp_error e)
    in
    let verdict, stats =
      match
        Explore.run ~graph:(Countq_topology.Tree.to_graph tree) ~protocol
          ~check ()
      with
      | outcome -> verdict_of outcome
      | exception Explore.Violation m -> ("VIOLATION: " ^ m, zero_stats)
    in
    [
      name;
      "queue/arrow";
      Table.cell_int (List.length requests);
      Table.cell_int stats.explored;
      Table.cell_int stats.terminal;
      Table.cell_int stats.dedup_hits;
      verdict;
    ]
  in
  let central_case name g requests =
    let protocol = Counting.Central.one_shot_protocol ~graph:g ~requests () in
    let check completions =
      let outcomes =
        List.map
          (fun (c : _ Engine.completion) ->
            let node, count = c.value in
            { Counting.Counts.node; count; round = c.round })
          completions
      in
      match Counting.Counts.validate ~requests outcomes with
      | Ok () -> Ok ()
      | Error e -> Error (Format.asprintf "%a" Counting.Counts.pp_error e)
    in
    let verdict, stats =
      match Explore.run ~graph:g ~protocol ~check () with
      | outcome -> verdict_of outcome
      | exception Explore.Violation m -> ("VIOLATION: " ^ m, zero_stats)
    in
    [
      name;
      "count/central";
      Table.cell_int (List.length requests);
      Table.cell_int stats.explored;
      Table.cell_int stats.terminal;
      Table.cell_int stats.dedup_hits;
      verdict;
    ]
  in
  (* Ceilings chosen so the full table stays under ~2s: the canonical
     encoding plus the partial-order reduction put 6-7 node instances
     (hundreds of thousands of configs) inside the default budget,
     where the seed explorer topped out at 4-5 nodes. *)
  let rows =
    if quick then
      [
        arrow_case "path-4" (Gen.path 4) [ 1; 2; 3 ];
        central_case "star-4" (Gen.star 4) [ 1; 2; 3 ];
      ]
    else
      [
        arrow_case "path-4" (Gen.path 4) [ 1; 2; 3 ];
        arrow_case "mesh-2x2" (Gen.square_mesh 2) [ 0; 1; 2; 3 ];
        arrow_case "complete-6" (Gen.complete 6) [ 0; 1; 2; 3; 4; 5 ];
        arrow_case "path-7" (Gen.path 7) [ 0; 1; 2; 3; 4; 5; 6 ];
        arrow_case "star-6" (Gen.star 6) [ 1; 2; 3; 4; 5 ];
        arrow_case "star-7" (Gen.star 7) [ 1; 2; 3; 4; 5; 6 ];
        central_case "path-6" (Gen.path 6) [ 0; 2; 3; 5 ];
        central_case "star-6" (Gen.star 6) [ 1; 2; 3; 4; 5 ];
        central_case "complete-6" (Gen.complete 6) [ 0; 1; 2; 3; 4; 5 ];
      ]
  in
  Table.make ~id:"E26" ~title:"exhaustive schedule verification on small instances"
    ~paper_ref:"safety of the Section 2.2 specifications under EVERY schedule"
    ~headers:
      [ "instance"; "protocol"; "k"; "configs"; "terminals"; "dedup"; "verdict" ]
    ~notes:
      [
        "fully asynchronous interleaving semantics over-approximate both engines' schedules;";
        "'all schedules safe' is a proof by exhaustion for that instance, not a sample;";
        "configs counts canonical classes after partial-order reduction (transmits collapsed)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E27: robustness - queuing and counting under link churn.            *)

let churn_verdict (s : Run.churn_summary) =
  if s.c_completed = s.c_expected && s.c_valid && s.c_safe && s.c_live then "ok"
  else if not s.c_safe then "UNSAFE"
  else if s.c_stalled then "stalled"
  else
    Printf.sprintf "lost %d op(s)" (s.c_expected - s.c_completed)

let churn_row ~label (s : Run.churn_summary) =
  [
    label;
    s.c_protocol;
    Printf.sprintf "%d/%d" s.c_completed s.c_expected;
    Table.cell_bool s.c_valid;
    Table.cell_int s.c_rounds;
    Table.cell_int s.c_extra_rounds;
    Table.cell_int s.c_messages;
    Table.cell_int s.c_extra_messages;
    Table.cell_int (s.topo.link_drops + s.topo.node_drops);
    churn_verdict s;
  ]

let churn_headers =
  [
    "adversary";
    "protocol";
    "done";
    "valid";
    "rounds";
    "+rounds";
    "msgs";
    "+msgs";
    "dropped";
    "verdict";
  ]

let e27_churn_degradation ?quick:(quick = false) ?ctx () =
  let module Dynamic = Countq_simnet.Dynamic in
  let ctx = Sweep.of_option ctx in
  let g = if quick then Gen.square_mesh 3 else Gen.square_mesh 4 in
  let requests = all_nodes (Graph.n g) in
  let rates = if quick then [ 0.0; 0.3 ] else [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let protocols =
    [ `Arrow_static; `Arrow_routed; `Dynamic_queue; `Central_count ]
  in
  let points =
    List.map
      (fun rate ->
        Sweep.rows_point
          ~name:
            (Printf.sprintf "churn:mesh%d:rate%.2f" (Graph.n g) rate)
          (fun ~rng:_ ->
            let sched = Dynamic.link_flaps ~seed ~rate ~epoch:4 g in
            let label = Printf.sprintf "flaps %.2f" rate in
            List.map
              (fun protocol ->
                churn_row ~label
                  (Run.run_churn ~pool:(Sweep.pool ctx) ~ack_timeout:4 ~graph:g
                     ~protocol ~sched ~requests ()))
              protocols))
      rates
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E27" points in
  Table.make ~id:"E27"
    ~title:"queuing and counting under link churn (flap-rate sweep)"
    ~paper_ref:"ROADMAP item 2; Sharma-Busch (dynamic queuing)"
    ~headers:churn_headers
    ~notes:
      [
        Printf.sprintf
          "%d-node mesh, R = V; each epoch of 4 rounds every link is down \
           independently with the given rate"
          (Graph.n g);
        "+rounds/+msgs are measured against the identity-schedule baseline of \
         the same protocol";
        "arrow-static is the paper's protocol left on its spanning tree: one \
         flapped tree edge loses the operation";
        "the dynamic queue floods monotone knowledge and needs no fixed \
         structure; arrow+route re-routes tree edges around cuts";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E28: robustness - cost vs the connectivity interval T.              *)

let e28_interval_connectivity ?quick:(quick = false) ?ctx () =
  let module Dynamic = Countq_simnet.Dynamic in
  let ctx = Sweep.of_option ctx in
  let g = if quick then Gen.complete 6 else Gen.complete 8 in
  let requests = all_nodes (Graph.n g) in
  let ts = if quick then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let protocols = [ `Dynamic_queue; `Arrow_routed ] in
  let points =
    List.map
      (fun t ->
        Sweep.rows_point
          ~name:(Printf.sprintf "tinterval:K%d:t%d" (Graph.n g) t)
          (fun ~rng:_ ->
            let sched = Dynamic.t_interval ~seed ~t g in
            let label = Printf.sprintf "T=%d" t in
            List.map
              (fun protocol ->
                churn_row ~label
                  (Run.run_churn ~pool:(Sweep.pool ctx) ~ack_timeout:4 ~graph:g
                     ~protocol ~sched ~requests ()))
              protocols))
      ts
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E28" points in
  Table.make ~id:"E28"
    ~title:"dynamic queuing vs the T-interval-connectivity adversary"
    ~paper_ref:"ROADMAP item 2; T-interval connectivity (Kuhn-Lynch-Oshman)"
    ~headers:churn_headers
    ~notes:
      [
        Printf.sprintf
          "K_%d, R = V; in each window of T rounds only a fresh random \
           spanning tree of the base graph is up"
          (Graph.n g);
        "connectivity holds every round, but the surviving structure changes \
         completely between windows";
        "liveness must hold at every T; the cost columns show the graceful \
         degradation as T shrinks";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E29: open loop - latency vs offered load, counting vs queuing.      *)

let e29_latency_vs_load ?quick:(quick = false) ?ctx () =
  let module Implicit = Countq_topology.Implicit in
  let ctx = Sweep.of_option ctx in
  (* Sharded runs are bit-identical, but they get their own point names:
     a cache hit from a sequential run would silently skip the sharded
     execution the caller asked to exercise. *)
  let shards = Sweep.shards ctx in
  let stag = if shards >= 2 then Printf.sprintf ":s%d" shards else "" in
  let n = if quick then 256 else 1024 in
  let horizon = if quick then 256 else 512 in
  let topo = Implicit.list n in
  let rates = if quick then [ 0.25; 1.0 ] else [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let workloads = [ Load.Queuing; Load.Counting ] in
  let points =
    List.concat_map
      (fun w ->
        List.map
          (fun rate ->
            Sweep.rows_point
              ~name:
                (Printf.sprintf "load:%s:h%d:%s:r%g%s" (Implicit.label topo)
                   horizon (Load.workload_label w) rate stag)
              (fun ~rng:_ ->
                let s =
                  Load.run ~seed ~shards ~topo ~workload:w
                    ~arrival:(Load.Poisson rate) ~horizon ()
                in
                [
                  [
                    s.workload;
                    Table.cell_float ~decimals:2 s.offered;
                    Table.cell_int s.injected;
                    Table.cell_int s.completed;
                    Table.cell_float ~decimals:3 s.throughput;
                    Table.cell_float ~decimals:1 s.p50;
                    Table.cell_float ~decimals:1 s.p95;
                    Table.cell_float ~decimals:1 s.p99;
                    Table.cell_int s.max_backlog;
                    Table.cell_int s.peak_in_flight;
                    (* not cell_bool: yes/NO cells are reserved for the
                       paper's inequality checks, and queuing staying
                       unsaturated is the expected shape, not a failure *)
                    (if s.saturated then "sat" else "ok");
                  ];
                ]))
          rates)
      workloads
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E29" points in
  Table.make ~id:"E29"
    ~title:"latency vs offered load - the separation as a saturation curve"
    ~paper_ref:"Ghodselahi-Kuhn (sustained request streams); ROADMAP item 1"
    ~headers:
      [
        "workload"; "offered"; "injected"; "done"; "thr"; "p50"; "p95"; "p99";
        "backlog"; "in-flight"; "saturated";
      ]
    ~notes:
      [
        Printf.sprintf
          "%d-node implicit list, Poisson arrivals for %d rounds, drain %d \
           more; delays in rounds over completed operations" n horizon horizon;
        "counting round-trips every operation through the centre node, whose \
         unit receive capacity caps service at ~1 op/round: latency explodes \
         at the knee and the run saturates";
        "queuing hands each operation to the current tail, so service is \
         distributed and the same offered load stays far below saturation";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E30: the event engine's reach - one-shot runs up to a million nodes.*)

let e30_event_engine_scaling ?quick:(quick = false) ?ctx () =
  let module Implicit = Countq_topology.Implicit in
  let module Event = Countq_simnet.Event_engine in
  let ctx = Sweep.of_option ctx in
  let shards = Sweep.shards ctx in
  let stag = if shards >= 2 then Printf.sprintf ":s%d" shards else "" in
  let q_sizes =
    if quick then [ 1_000; 10_000 ]
    else [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let c_sizes = if quick then [ 1_000 ] else [ 1_000; 10_000 ] in
  let stride = 16 in
  let point w n =
    Sweep.rows_point
      ~name:
        (Printf.sprintf "scale:list%d:%s:k%d%s" n (Load.workload_label w)
           stride stag)
      (fun ~rng:_ ->
        let topo = Implicit.list n in
        let requests = List.init (n / stride) (fun i -> i * stride) in
        let stats = Event.fresh_stats () in
        let s = Load.one_shot ~shards ~stats ~topo ~workload:w ~requests () in
        [
          [
            Load.workload_label w;
            Table.cell_int n;
            Table.cell_int s.os_requests;
            Table.cell_int s.os_completed;
            Table.cell_int s.os_rounds;
            Table.cell_int s.os_messages;
            Table.cell_float ~decimals:1 (ratio s.os_messages s.os_requests);
            Table.cell_int stats.Event.touched;
            Table.cell_int stats.Event.executed_rounds;
          ];
        ])
  in
  let points =
    List.map (point Load.Queuing) q_sizes
    @ List.map (point Load.Counting) c_sizes
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E30" points in
  Table.make ~id:"E30"
    ~title:"event-engine n-scaling on implicit lists (to a million nodes)"
    ~paper_ref:"ROADMAP item 1 (cost proportional to activity)"
    ~headers:
      [
        "workload"; "n"; "k"; "done"; "rounds"; "messages"; "msgs/op";
        "touched"; "exec rounds";
      ]
    ~notes:
      [
        "one-shot runs, every 16th node requesting, on the implicit list - \
         the graph is never materialised and only touched nodes hold state";
        "queuing's messages grow linearly in n (each request meets the \
         reversed path of the next requester within a stride), so a million \
         nodes stay in reach";
        "counting's messages grow as ops x distance-to-centre - quadratic on \
         a list - which is why its rows stop at n = 10^4: the separation is \
         the scaling limit itself";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E31: streaming telemetry - constant-memory long-horizon runs.       *)

let e31_streaming_telemetry ?quick:(quick = false) ?ctx () =
  let module Implicit = Countq_topology.Implicit in
  let module Telemetry = Countq_simnet.Telemetry in
  let ctx = Sweep.of_option ctx in
  let side = if quick then 32 else 100 in
  let topo = Implicit.torus ~dims:[ side; side ] in
  (* Cross-check leg: small enough to retain every completion, run
     both ways on the same seed and compare percentiles. *)
  let xhorizon = if quick then 256 else 2048 in
  let xrate = if quick then 4.0 else 16.0 in
  (* Long leg: streaming only - the retained path would hold one span
     per operation. *)
  let horizon = if quick then 1024 else 16_384 in
  let rate = if quick then 8.0 else 62.0 in
  let row label (s : Load.summary) ~err ~windows =
    [
      label;
      Table.cell_int (Implicit.n topo);
      Table.cell_int s.horizon;
      Table.cell_int s.injected;
      Table.cell_int s.completed;
      Table.cell_int s.unfinished;
      Table.cell_float ~decimals:1 s.p50;
      Table.cell_float ~decimals:1 s.p95;
      Table.cell_float ~decimals:1 s.p99;
      Table.cell_int s.max_delay;
      (if s.sketched then "sketch" else "exact");
      err;
      windows;
    ]
  in
  let points =
    [
      Sweep.rows_point
        ~name:
          (Printf.sprintf "stream:xcheck:%s:h%d:r%g" (Implicit.label topo)
             xhorizon xrate)
        (fun ~rng:_ ->
          let go streaming =
            Load.run ~seed ~topo ~workload:Load.Queuing ~streaming
              ~arrival:(Load.Poisson xrate) ~horizon:xhorizon ()
          in
          let exact = go false and stream = go true in
          let rel a b = if a = 0. then 0. else abs_float (b -. a) /. a in
          let err =
            List.fold_left max 0.
              [
                rel exact.Load.p50 stream.Load.p50;
                rel exact.Load.p95 stream.Load.p95;
                rel exact.Load.p99 stream.Load.p99;
              ]
          in
          [
            row "retained" exact ~err:"-" ~windows:"-";
            row "streaming" stream
              ~err:(Printf.sprintf "%.2f%%" (100. *. err))
              ~windows:"-";
          ]);
      Sweep.rows_point
        ~name:
          (Printf.sprintf "stream:long:%s:h%d:r%g" (Implicit.label topo)
             horizon rate)
        (fun ~rng:_ ->
          let tl = Telemetry.create ~window_size:(max 1 (horizon / 32)) () in
          let s =
            Load.run ~seed ~topo ~workload:Load.Queuing ~streaming:true
              ~telemetry:tl ~arrival:(Load.Poisson rate) ~horizon ()
          in
          [
            row "streaming" s ~err:"-"
              ~windows:
                (Table.cell_int (List.length (Telemetry.windows tl)));
          ]);
    ]
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E31" points in
  Table.make ~id:"E31"
    ~title:"streaming telemetry - sketch percentiles at 10^6 operations"
    ~paper_ref:"ROADMAP observability item; HDR-sketch accuracy bound"
    ~headers:
      [
        "mode"; "n"; "horizon"; "injected"; "done"; "stranded"; "p50"; "p95";
        "p99"; "max"; "stats"; "err"; "windows";
      ]
    ~notes:
      [
        Printf.sprintf
          "%dx%d implicit torus, Poisson queuing arrivals; the cross-check \
           leg runs the same seed retained and streaming and reports the \
           worst percentile disagreement (bound: %.2f%% once the sketch \
           leaves exact mode)" side side
          (100. *. Countq_util.Sketch.relative_error);
        "the long leg retains no spans: delays fold into a fixed-size \
         log-bucketed sketch, exemplars into a bounded reservoir, and the \
         attached telemetry ring keeps the last 64 windows - memory is O(1) \
         in the operation count";
        "stranded = injected but never completed within horizon + drain; \
         the streaming path counts them without a per-operation table";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E32: counting at 10^6 - the combining funnel on implicit trees.     *)

let e32_funnel_scaling ?quick:(quick = false) ?ctx () =
  let module Implicit = Countq_topology.Implicit in
  let module Event = Countq_simnet.Event_engine in
  let module Funnel = Countq_counting.Funnel in
  let ctx = Sweep.of_option ctx in
  let shards = Sweep.shards ctx in
  let stag = if shards >= 2 then Printf.sprintf ":s%d" shards else "" in
  let f_sizes =
    if quick then [ 1_000; 10_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  let c_sizes = if quick then [ 1_000 ] else [ 10_000; 100_000 ] in
  let stride = 16 in
  let point w n =
    let k = n / stride in
    let arity = Funnel.adaptive_width ~n ~concurrency:k in
    Sweep.rows_point
      ~name:
        (Printf.sprintf "funnel-scale:tree%d-%d:%s:k%d%s" arity n
           (Load.workload_label w) stride stag)
      (fun ~rng:_ ->
        let topo = Implicit.tree ~arity n in
        let requests = List.init k (fun i -> i * stride) in
        let stats = Event.fresh_stats () in
        let s = Load.one_shot ~shards ~stats ~topo ~workload:w ~requests () in
        [
          [
            Load.workload_label w;
            Table.cell_int n;
            Table.cell_int arity;
            Table.cell_int s.os_requests;
            Table.cell_int s.os_completed;
            Table.cell_int s.os_rounds;
            Table.cell_int s.os_messages;
            Table.cell_float ~decimals:1 (ratio s.os_messages s.os_requests);
            Table.cell_int stats.Event.touched;
            Table.cell_int stats.Event.executed_rounds;
          ];
        ])
  in
  let points =
    List.map (point Load.Funnel) f_sizes
    @ List.map (point Load.Counting) c_sizes
  in
  let rows, _stats = Sweep.run_rows ctx ~experiment:"E32" points in
  Table.make ~id:"E32"
    ~title:"combining-funnel counting on implicit trees (to a million nodes)"
    ~paper_ref:"exact counting at the event engine's reach (next to E30)"
    ~headers:
      [
        "workload"; "n"; "arity"; "k"; "done"; "rounds"; "messages";
        "msgs/op"; "touched"; "exec rounds";
      ]
    ~notes:
      [
        "one-shot runs, every 16th node requesting, on implicit balanced \
         trees whose arity is the adaptive width (1 + sqrt k, clamped to \
         [2, 64]) - the graph is never materialised and only the on-path \
         closure holds state";
        "funnel messages stay O(1) per operation at every size (one Up \
         and one Down per closure edge, combined en route), and rounds \
         scale with depth x arity (capacity-1 receive serialisation at \
         each combiner), independent of k - so exact counting reaches \
         n = 10^6, where E30's central counter stopped at 10^4";
        "the counting rows run the central fetch-and-add on the same \
         trees: messages per op are small (the tree is shallow) but every \
         operation serialises through the centre, so rounds grow linearly \
         in k - the separation the funnel's combining removes";
      ]
    rows

(* ------------------------------------------------------------------ *)

(* Most experiments ignore the sweep context; [lift] adapts them to the
   registry's uniform run type. *)
let lift run ?quick ?ctx:_ () = run ?quick ()

let all =
  [
    { id = "E1"; title = "model demo (Fig. 1)"; paper_ref = "Fig. 1"; run = lift e1_model_demo };
    {
      id = "E2";
      title = "counting lower bound, general graphs";
      paper_ref = "Theorem 3.5";
      run = lift e2_counting_lb_general;
    };
    {
      id = "E3";
      title = "counting lower bound, high diameter";
      paper_ref = "Theorem 3.6";
      run = e3_counting_lb_diameter;
    };
    {
      id = "E4";
      title = "influence growth envelope";
      paper_ref = "Lemmas 3.2-3.4";
      run = lift e4_influence_growth;
    };
    {
      id = "E5";
      title = "arrow vs 2x nearest-neighbour TSP";
      paper_ref = "Theorem 4.1";
      run = lift e5_arrow_vs_tsp;
    };
    {
      id = "E6";
      title = "list tours vs 3n";
      paper_ref = "Lemmas 4.3/4.4";
      run = lift e6_list_tsp;
    };
    {
      id = "E7";
      title = "perfect m-ary tree tours are O(n)";
      paper_ref = "Theorems 4.7/4.12";
      run = lift e7_mary_tree_tsp;
    };
    {
      id = "E8";
      title = "NN approximation quality";
      paper_ref = "Corollary 4.2";
      run = lift e8_nn_approximation;
    };
    {
      id = "E9";
      title = "the separation on Hamilton-path graphs";
      paper_ref = "Theorems 4.5/4.6";
      run = e9_hamilton_separation;
    };
    {
      id = "E10";
      title = "the separation on high-diameter graphs";
      paper_ref = "Theorem 4.13";
      run = e10_high_diameter_separation;
    };
    {
      id = "E11";
      title = "the star: no separation";
      paper_ref = "Section 5";
      run = lift e11_star_no_separation;
    };
    {
      id = "E12";
      title = "ordered multicast";
      paper_ref = "Section 1";
      run = e12_ordered_multicast;
    };
    {
      id = "E13";
      title = "long-lived arrow";
      paper_ref = "related work [8]";
      run = e13_long_lived_arrow;
    };
    {
      id = "E14";
      title = "ablation: arbitration policy";
      paper_ref = "Section 2.1 model";
      run = lift e14_arbiter_ablation;
    };
    {
      id = "E15";
      title = "ablation: counting-network width";
      paper_ref = "reference [1]";
      run = lift e15_network_width_ablation;
    };
    {
      id = "E16";
      title = "ablation: arrow spanning tree";
      paper_ref = "Theorem 4.5 vs Corollary 4.2";
      run = lift e16_arrow_tree_ablation;
    };
    {
      id = "E17";
      title = "ablation: notification overhead";
      paper_ref = "Section 4 semantics";
      run = lift e17_notify_overhead;
    };
    {
      id = "E18";
      title = "asynchronous execution";
      paper_ref = "Section 2.1 (async model)";
      run = lift e18_async_sensitivity;
    };
    {
      id = "E19";
      title = "fetch&add vs counting";
      paper_ref = "Section 5 open question";
      run = lift e19_fetch_add;
    };
    {
      id = "E20";
      title = "ablation: network families";
      paper_ref = "reference [1]";
      run = lift e20_network_families;
    };
    {
      id = "E21";
      title = "expanded-step soundness";
      paper_ref = "Section 2.1 simulation";
      run = lift e21_expansion_soundness;
    };
    {
      id = "E22";
      title = "other constant-degree networks";
      paper_ref = "Thm 3.5 + Cor 4.2";
      run = lift e22_other_networks;
    };
    {
      id = "E23";
      title = "observed influence sets";
      paper_ref = "Section 3, measured";
      run = lift e23_observed_influence;
    };
    {
      id = "E24";
      title = "queuing-protocol ablation";
      paper_ref = "Raymond TOCS'89";
      run = lift e24_queuing_ablation;
    };
    {
      id = "E25";
      title = "measured growth exponents";
      paper_ref = "all separations, fitted";
      run = e25_growth_exponents;
    };
    {
      id = "E26";
      title = "exhaustive schedule verification";
      paper_ref = "Section 2.2 safety";
      run = lift e26_exhaustive_verification;
    };
    {
      id = "E27";
      title = "queuing and counting under link churn";
      paper_ref = "ROADMAP item 2 (dynamic networks)";
      run = e27_churn_degradation;
    };
    {
      id = "E28";
      title = "cost vs connectivity interval T";
      paper_ref = "ROADMAP item 2 (dynamic networks)";
      run = e28_interval_connectivity;
    };
    {
      id = "E29";
      title = "latency vs offered load (open loop)";
      paper_ref = "sustained request streams";
      run = e29_latency_vs_load;
    };
    {
      id = "E30";
      title = "event-engine n-scaling to 10^6";
      paper_ref = "ROADMAP item 1";
      run = e30_event_engine_scaling;
    };
    {
      id = "E31";
      title = "streaming telemetry at 10^6 operations";
      paper_ref = "ROADMAP observability item";
      run = e31_streaming_telemetry;
    };
    {
      id = "E32";
      title = "combining-funnel counting at 10^6";
      paper_ref = "exact counting at scale";
      run = e32_funnel_scaling;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun s -> String.lowercase_ascii s.id = id) all
