(** The paper-reproduction experiments (E1–E13).

    The paper's evaluation is its theorems; each experiment regenerates
    one claim as a measured table (see DESIGN.md's experiment index).
    Every function takes [?quick] — [true] shrinks the sweep for use in
    test suites — and returns a renderable {!Table.t}. The grid-shaped
    experiments (E3, E9, E10, E12, E13, E25) additionally take
    [?ctx:Sweep.ctx] and evaluate their points on its domain pool,
    consulting its result cache; the default is {!Sweep.serial} (one
    lane, no cache), which reproduces them exactly. *)

type spec = {
  id : string;
  title : string;
  paper_ref : string;
  run : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t;
}

val e1_model_demo : ?quick:bool -> unit -> Table.t
(** Fig. 1: counting ranks and queuing predecessors for one concrete
    one-shot run on a small mesh, both validated. *)

val e2_counting_lb_general : ?quick:bool -> unit -> Table.t
(** Theorem 3.5: measured cost of the best counting protocol on K_n
    versus the exact [Ω(n log* n)] sum. *)

val e3_counting_lb_diameter : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Theorem 3.6: counting on the list and the 2-D mesh versus the
    [Ω(α²)] floor. *)

val e4_influence_growth : ?quick:bool -> unit -> Table.t
(** Lemmas 3.2–3.4: the influence-set recurrence against the
    [tow(2t)] envelope. *)

val e5_arrow_vs_tsp : ?quick:bool -> unit -> Table.t
(** Theorem 4.1: measured arrow cost versus twice the
    nearest-neighbour TSP, across topologies and request densities. *)

val e6_list_tsp : ?quick:bool -> unit -> Table.t
(** Lemma 4.3 / Fig. 2: nearest-neighbour tours on the list against
    the [3n] ceiling, with the run-decomposition certificate. *)

val e7_mary_tree_tsp : ?quick:bool -> unit -> Table.t
(** Theorem 4.7 / Fig. 3 / Theorem 4.12: nearest-neighbour tours on
    perfect m-ary trees stay [O(n)]. *)

val e8_nn_approximation : ?quick:bool -> unit -> Table.t
(** Corollary 4.2: tours on constant-degree random trees versus
    [O(n log k)], and measured NN/optimal ratios versus the
    Rosenkrantz [log k] guarantee (Held–Karp optima). *)

val e9_hamilton_separation : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Theorem 4.5 / Lemma 4.6 — the headline: queuing versus counting
    total delay on K_n, the mesh and the hypercube; the ratio must
    grow with n. *)

val e10_high_diameter_separation :
  ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Theorem 4.13: the separation on high-diameter constant-degree
    graphs (caterpillars). *)

val e11_star_no_separation : ?quick:bool -> unit -> Table.t
(** Section 5: on the star, counting and queuing are both Θ(n²) — the
    ratio stays bounded instead of growing. *)

val e12_ordered_multicast : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Section 1's application: end-to-end ordered-multicast latency,
    queuing-based versus counting-based. *)

val e13_long_lived_arrow : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Kuhn–Wattenhofer extension: arrow under staggered arrivals stays
    stable with bounded per-operation delay. *)

val e14_arbiter_ablation : ?quick:bool -> unit -> Table.t
(** Ablation: how the model's message-arbitration policy (fair
    round-robin vs adversarial fixed-priority) moves the delays. *)

val e15_network_width_ablation : ?quick:bool -> unit -> Table.t
(** Ablation: bitonic-network width — contention versus pipeline
    depth. *)

val e16_arrow_tree_ablation : ?quick:bool -> unit -> Table.t
(** Ablation: the arrow protocol on Hamilton-path vs BFS vs DFS
    spanning trees (why Theorem 4.5 picks the path). *)

val e17_notify_overhead : ?quick:bool -> unit -> Table.t
(** Ablation: the cost of routing each discovered predecessor back to
    its origin (the variant applications consume). *)

val e18_async_sensitivity : ?quick:bool -> unit -> Table.t
(** The general asynchronous model of Section 2.1: safety under
    constant/jittered/adversarial link delays, for both problems. *)

val e19_fetch_add : ?quick:bool -> unit -> Table.t
(** The Section 5 open-question direction: distributed fetch&add costs
    exactly what counting costs in the same structures. *)

val e20_network_families : ?quick:bool -> unit -> Table.t
(** Ablation: bitonic vs periodic counting networks, embedded on the
    same graph. *)

val e21_expansion_soundness : ?quick:bool -> unit -> Table.t
(** Section 2.1's simulation claim, measured: arrow in the strict
    base model costs at most [c] times its expanded-step cost. *)

val e22_other_networks : ?quick:bool -> unit -> Table.t
(** Beyond the paper's named families: the separation measured on
    de Bruijn graphs, cube-connected cycles, butterflies, random
    regular graphs and tori. *)

val e23_observed_influence : ?quick:bool -> unit -> Table.t
(** Section 3's influence sets [A(i, t)] replayed on real executions:
    counting's must reach [|R|]; the arrow's stay tiny. *)

val e24_queuing_ablation : ?quick:bool -> unit -> Table.t
(** Queuing-side ablation: the arrow against the folk baselines it
    displaced — the central queue and the circulating token — across
    request densities. *)

val e25_growth_exponents : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Fit [cost ~ c·n^e] on R = V sweeps and compare the measured
    exponents with the theorems' predictions — the separations as
    single numbers. *)

val e26_exhaustive_verification : ?quick:bool -> unit -> Table.t
(** Model-check the Section 2.2 safety specifications on every
    asynchronous interleaving of small instances. *)

val e27_churn_degradation : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Queuing vs counting under a seeded link-flap adversary, swept over
    the flap rate: the static arrow dies with its spanning tree while
    the dynamic queue, the route-repaired arrow and the retrying
    central counter degrade measurably instead. *)

val e28_interval_connectivity : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Dynamic queuing under the worst-case T-interval-connectivity
    adversary: liveness at every T, cost degrading gracefully as the
    interval shrinks. *)

val e29_latency_vs_load : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Open-loop arrivals on the event engine: per-operation delay
    percentiles and throughput as the offered rate sweeps past
    counting's service capacity — the separation as a saturation
    curve. *)

val e30_event_engine_scaling :
  ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** One-shot runs on implicit lists from 10^3 to 10^6 nodes: queuing's
    cost tracks the work (linear in n), counting's quadratic message
    bill caps its rows at 10^4 — the scaling ceiling is itself the
    separation. *)

val e31_streaming_telemetry :
  ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Constant-memory observability: a long-horizon open-loop run whose
    delay percentiles come from a streaming sketch and whose exemplar
    spans come from a reservoir, cross-checked against the retained
    path on a prefix small enough to hold exactly. *)

val e32_funnel_scaling : ?quick:bool -> ?ctx:Sweep.ctx -> unit -> Table.t
(** Exact counting at the event engine's reach: combining-funnel
    one-shots on implicit balanced trees at 10^4..10^6 nodes (messages
    per operation stay O(1), rounds near 2·depth), next to the central
    fetch-and-add on the same trees, whose rounds grow linearly in the
    request count — the gap E30 could only show as a missing row. *)

val all : spec list
(** Every experiment, in id order. *)

val find : string -> spec option
(** Look up by id (case-insensitive). *)
