(** Content-addressed on-disk result cache for sweep points.

    Storage is one append-only JSONL file per namespace (one namespace
    per experiment) under a cache directory — [bench/out/cache/] by
    default at the call sites. Each line is
    [{"schema": "countq-cache/1", "key": <hex>, "spec": <point name>,
    "value": <result>}]; the [key] is a fingerprint of everything that
    determines the result (sweep schema version, experiment, seed,
    engine-config tag, point name — {!Sweep} assembles it), so a code
    or config change that alters semantics changes the key and old
    entries simply stop matching. Corrupted lines (unparseable, or
    missing fields) are skipped at load and recomputed; a syntactically
    valid but mis-shaped value is rejected by the caller's [valid]
    check and recomputed too. The bench harness additionally
    spot-checks one random cached point per experiment against a fresh
    recompute every run, so the cache can never silently serve wrong
    tables. *)

val fingerprint : string -> string
(** 64-bit FNV-1a of the string, as 16 hex digits — the content
    address. *)

val seed_of : string -> int64
(** The same hash as a raw [int64] — used to derive independent
    per-point RNG seeds from point names. *)

type t
(** A handle on one cache directory, with hit/miss accounting.
    Namespaces load lazily on first access. Lookups and stores are for
    the coordinating thread only (the sweep runner looks up before
    dispatching to the pool and stores after joining it). *)

val create : dir:string -> t
(** [create ~dir] opens (without touching the filesystem yet) the
    cache rooted at [dir]. The directory is created on first store. *)

val dir : t -> string

val find :
  t -> ?valid:(Countq_util.Json.t -> bool) -> ns:string -> key:string ->
  unit -> Countq_util.Json.t option
(** Look up a key. A stored value failing [valid] (default: accept) is
    dropped and reported as a miss, so shape-corrupted entries fall
    back to recomputation. Updates the hit/miss counters. *)

val store :
  t -> ns:string -> key:string -> spec:string -> Countq_util.Json.t -> unit
(** Append one entry ([spec] is the human-readable point name, stored
    for debuggability only) and add it to the in-memory table. *)

val hits : t -> int
val misses : t -> int
(** Cumulative accounting across every namespace since [create]. *)

(** {1 Directory-level maintenance} (the [countq cache] subcommand) *)

type summary = {
  namespaces : (string * int) list;  (** per-namespace entry counts. *)
  entries : int;
  bytes : int;
}

val summarize : dir:string -> summary
val clear : dir:string -> int
(** Delete every cache file under [dir]; returns how many were
    removed. *)
