(* Open-loop workload layer. See load.mli. *)

module Engine = Countq_simnet.Engine
module Event = Countq_simnet.Event_engine
module Shard = Countq_simnet.Shard
module Span = Countq_simnet.Span
module Metrics = Countq_simnet.Metrics
module Implicit = Countq_topology.Implicit
module Rng = Countq_util.Rng
module Stats = Countq_util.Stats
module Sketch = Countq_util.Sketch
module Telemetry = Countq_simnet.Telemetry
module Reservoir = Telemetry.Reservoir

type arrival =
  | Poisson of float
  | Bursty of { rate : float; on : int; off : int }
  | Diurnal of { rate : float; period : int }

let arrival_label = function
  | Poisson r -> Printf.sprintf "poisson-%g" r
  | Bursty { rate; on; off } -> Printf.sprintf "bursty-%g-%d-%d" rate on off
  | Diurnal { rate; period } -> Printf.sprintf "diurnal-%g-%d" rate period

(* Knuth's product method, chunked so the e^-λ factor never
   underflows: Poisson(λ) is the sum of ⌈λ/10⌉ independent
   Poisson(λ/⌈λ/10⌉) draws. *)
let poisson_draw rng lambda =
  if lambda <= 0. then 0
  else begin
    let chunks = max 1 (int_of_float (ceil (lambda /. 10.))) in
    let per = lambda /. float_of_int chunks in
    let l = exp (-.per) in
    let total = ref 0 in
    for _ = 1 to chunks do
      let k = ref 0 and p = ref 1.0 in
      let continue = ref true in
      while !continue do
        p := !p *. Rng.float rng;
        if !p > l then incr k else continue := false
      done;
      total := !total + !k
    done;
    !total
  end

let rate_at arrival t =
  match arrival with
  | Poisson r -> r
  | Bursty { rate; on; off } ->
      if (t - 1) mod (on + off) < on then
        rate *. float_of_int (on + off) /. float_of_int on
      else 0.
  | Diurnal { rate; period } ->
      rate
      *. (1. +. sin (2. *. Float.pi *. float_of_int t /. float_of_int period))

let schedule ~seed arrival ~n ~horizon =
  if horizon < 1 then invalid_arg "Load.schedule: horizon must be >= 1";
  if n < 1 then invalid_arg "Load.schedule: n must be >= 1";
  let rng = Rng.create seed in
  let acc = ref [] in
  for t = 1 to horizon do
    let k = poisson_draw rng (rate_at arrival t) in
    let origins = Array.init k (fun _ -> Rng.below rng n) in
    Array.sort compare origins;
    (* Prepend in ascending order; the final [List.rev] restores
       ascending (round, node) order. *)
    for i = 0 to k - 1 do
      acc := (t, origins.(i)) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

type workload = Queuing | Counting | Funnel

let workload_label = function
  | Queuing -> "queuing"
  | Counting -> "counting"
  | Funnel -> "funnel"

type summary = {
  workload : string;
  topology : string;
  arrival : string;
  horizon : int;
  injected : int;
  completed : int;
  unfinished : int;
  offered : float;
  throughput : float;
  mean_delay : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_delay : int;
  max_backlog : int;
  peak_in_flight : int;
  touched : int;
  executed_rounds : int;
  rounds : int;
  messages : int;
  saturated : bool;
  spans : Span.t list;
  sketched : bool;
  exemplars : (string * Span.t) list;
}

(* ------------------------------------------------------------------ *)
(* Queuing: arrow path reversal (Raymond / Demmer–Herlihy) over the
   implicit topology. link(v) points toward the current queue tail
   (self when v holds it); id(v) is the last operation issued at v.
   Completion values are global op indices; predecessor identity is
   tracked (it is the protocol) but the open-loop observable is the
   completion instant.                                                 *)

type q_state = { link : int; last : int (* op index, -1 = Init *) }
type q_msg = Queue of int

let queuing_protocol ~topo ~tail =
  let nn = Implicit.n topo in
  if tail < 0 || tail >= nn then invalid_arg "Load.run: tail out of range";
  {
    Engine.name = "open-loop-arrow";
    initial_state =
      (fun v ->
        {
          link = (if v = tail then v else Implicit.next_hop topo ~src:v ~dst:tail);
          last = -1;
        });
    on_start = (fun ~node:_ s -> (s, []));
    on_receive =
      (fun ~round:_ ~node ~src (Queue i) s ->
        let w = s.link in
        let s = { s with link = src } in
        if w = node then (s, [ Engine.Complete i ])
        else (s, [ Engine.Send (w, Queue i) ]));
    on_tick = Engine.no_tick;
  }

(* Issuing operation [i] at [v]: local completion if v holds the tail,
   else fire queue(i) at the arrow; either way v becomes the tail. *)
let issue_q v i s =
  if s.link = v then ({ s with last = i }, [ Engine.Complete i ])
  else ({ link = v; last = i }, [ Engine.Send (s.link, Queue i) ])

(* ------------------------------------------------------------------ *)
(* Counting: a central fetch-and-add. Requests route hop-by-hop to the
   centre, the counter increments, the response routes back; the
   operation completes when its origin receives the response. State is
   the counter (meaningful at the centre only).                        *)

type c_msg = { op_idx : int; resp : bool }

let counting_protocol ~topo ~center ~origin_of =
  let nn = Implicit.n topo in
  if center < 0 || center >= nn then invalid_arg "Load.run: center out of range";
  {
    Engine.name = "open-loop-counter";
    initial_state = (fun _ -> 0);
    on_start = (fun ~node:_ s -> (s, []));
    on_receive =
      (fun ~round:_ ~node ~src:_ m s ->
        let target = if m.resp then origin_of m.op_idx else center in
        if m.resp && node = target then (s, [ Engine.Complete m.op_idx ])
        else if (not m.resp) && node = center then
          let m' = { m with resp = true } in
          let dst = origin_of m.op_idx in
          if dst = center then (s + 1, [ Engine.Complete m.op_idx ])
          else
            (s + 1, [ Engine.Send (Implicit.next_hop topo ~src:node ~dst, m') ])
        else (s, [ Engine.Send (Implicit.next_hop topo ~src:node ~dst:target, m) ]));
    on_tick = Engine.no_tick;
  }

let issue_c ~topo ~center v i s =
  if v = center then (s + 1, [ Engine.Complete i ])
  else
    ( s,
      [
        Engine.Send
          (Implicit.next_hop topo ~src:v ~dst:center, { op_idx = i; resp = false });
      ] )

(* ------------------------------------------------------------------ *)
(* Funnel: the combining funnel (Funnel module) generalised to an open
   loop. Operations arriving in the same round form a cohort; each
   cohort runs one leaf-to-root combine / root-to-leaf decombine pass
   over its own on-path closure, and the root folds cohort totals into
   one global counter, so counts stay exact across the whole run. The
   combining window per (cohort, node) is precomputed from the arrival
   calendar: [expect] says how many on-path children will report and
   how many local arrivals will join, and the node flushes upward the
   moment both are in — message-driven, no timers. Same-round arrivals
   at a node inject before any child's Up can arrive (an Up sent in
   round t delivers in t+1), so batches form deterministically.        *)

type f_contrib = F_own of int | F_child of { child : int; count : int }

type f_cohort = {
  f_got : int;  (** on-path children heard from. *)
  f_arrived : int;  (** local arrivals injected so far. *)
  f_total : int;
  f_batch : f_contrib list;  (** reverse arrival order. *)
}

type f_state = {
  cohorts : (int * f_cohort) list;  (** in-flight cohorts, newest first. *)
  f_counter : int;  (** root only: counts handed out so far. *)
}

type f_msg =
  | F_up of { cohort : int; count : int }
  | F_down of { cohort : int; base : int }

let f_empty = { f_got = 0; f_arrived = 0; f_total = 0; f_batch = [] }

(* (cohort, node) -> (#on-path children, #local arrivals), from one
   walk up the tree per operation — the open-loop twin of the Funnel
   module's closure table. *)
let funnel_expectations ~root ~parent ~cal =
  let tbl = Hashtbl.create ((4 * Array.length cal) + 16) in
  Array.iter
    (fun (at, node) ->
      let rec ensure v =
        match Hashtbl.find_opt tbl (at, v) with
        | Some e -> e
        | None ->
            let e = ref (0, 0) in
            Hashtbl.add tbl (at, v) e;
            if v <> root then begin
              let pe = ensure (parent v) in
              let c, o = !pe in
              pe := (c + 1, o)
            end;
            e
      in
      let e = ensure node in
      let c, o = !e in
      e := (c, o + 1))
    cal;
  fun ~cohort ~node ->
    match Hashtbl.find_opt tbl (cohort, node) with
    | Some e -> !e
    | None -> (0, 0)

let funnel_machinery ~root ~parent ~expect =
  let find c s =
    match List.assoc_opt c s.cohorts with Some x -> x | None -> f_empty
  in
  let set c x s = { s with cohorts = (c, x) :: List.remove_assoc c s.cohorts } in
  let remove c s = { s with cohorts = List.remove_assoc c s.cohorts } in
  (* Decombine invariant, cohort-local: entered with [base] and batch
     total t, hand out exactly {base+1 .. base+t} in arrival order. *)
  let hand_down ~cohort base batch =
    let acts, _ =
      List.fold_left
        (fun (acts, b) contrib ->
          match contrib with
          | F_own i -> (Engine.Complete i :: acts, b + 1)
          | F_child { child; count } ->
              (Engine.Send (child, F_down { cohort; base = b }) :: acts, b + count))
        ([], base) batch
    in
    List.rev acts
  in
  let flush cohort v st s =
    if v = root then begin
      let base = s.f_counter in
      let s = { (remove cohort s) with f_counter = base + st.f_total } in
      (s, hand_down ~cohort base (List.rev st.f_batch))
    end
    else
      ( set cohort st s,
        [ Engine.Send (parent v, F_up { cohort; count = st.f_total }) ] )
  in
  let maybe_flush cohort v st s =
    let children, arrivals = expect ~cohort ~node:v in
    if st.f_got = children && st.f_arrived = arrivals then flush cohort v st s
    else (set cohort st s, [])
  in
  let protocol =
    {
      Engine.name = "open-loop-funnel";
      initial_state = (fun _ -> { cohorts = []; f_counter = 0 });
      on_start = (fun ~node:_ s -> (s, []));
      on_receive =
        (fun ~round:_ ~node ~src msg s ->
          match msg with
          | F_up { cohort; count } ->
              let st = find cohort s in
              let st =
                {
                  st with
                  f_got = st.f_got + 1;
                  f_total = st.f_total + count;
                  f_batch = F_child { child = src; count } :: st.f_batch;
                }
              in
              maybe_flush cohort node st s
          | F_down { cohort; base } ->
              let st = find cohort s in
              (remove cohort s, hand_down ~cohort base (List.rev st.f_batch)));
      on_tick = Engine.no_tick;
    }
  in
  let issue v i ~cohort s =
    let st = find cohort s in
    let st =
      {
        st with
        f_arrived = st.f_arrived + 1;
        f_total = st.f_total + 1;
        f_batch = F_own i :: st.f_batch;
      }
    in
    maybe_flush cohort v st s
  in
  (protocol, issue)

let funnel_tree ~topo name =
  match Implicit.tree_arity topo with
  | Some arity -> (0, fun v -> (v - 1) / arity)
  | None ->
      invalid_arg (name ^ ": the funnel workload needs an implicit tree family")

(* ------------------------------------------------------------------ *)

let summarise ~workload ~topo ~arrival ~horizon ~keep_spans ~cal ~stats
    ~(result : int Engine.result) =
  let injected = Array.length cal in
  let completion_round = Array.make injected (-1) in
  List.iter
    (fun (c : int Engine.completion) -> completion_round.(c.value) <- c.round)
    result.completions;
  let delays = ref [] in
  let completed = ref 0 in
  let max_delay = ref 0 in
  let sum_delay = ref 0 in
  Array.iteri
    (fun i (at, _) ->
      if completion_round.(i) >= 0 then begin
        incr completed;
        let d = completion_round.(i) - at in
        delays := d :: !delays;
        sum_delay := !sum_delay + d;
        if d > !max_delay then max_delay := d
      end)
    cal;
  let completed = !completed in
  let pct q =
    match Stats.percentile_ints !delays q with Some v -> v | None -> 0.
  in
  let spans =
    if not keep_spans then []
    else
      Array.to_list
        (Array.mapi
           (fun i (at, _) ->
             {
               Span.op = i;
               inject_round = at;
               hops = [];
               completion_round =
                 (if completion_round.(i) >= 0 then Some completion_round.(i)
                  else None);
             })
           cal)
  in
  let unfinished = injected - completed in
  {
    workload = workload_label workload;
    topology = Implicit.label topo;
    arrival = arrival_label arrival;
    horizon;
    injected;
    completed;
    unfinished;
    offered = float_of_int injected /. float_of_int horizon;
    throughput = float_of_int completed /. float_of_int horizon;
    mean_delay =
      (if completed = 0 then 0.
       else float_of_int !sum_delay /. float_of_int completed);
    p50 = pct 0.5;
    p95 = pct 0.95;
    p99 = pct 0.99;
    max_delay = !max_delay;
    max_backlog = result.max_link_backlog;
    peak_in_flight = stats.Event.peak_in_flight;
    touched = stats.Event.touched;
    executed_rounds = stats.Event.executed_rounds;
    rounds = result.rounds;
    messages = result.messages;
    saturated = unfinished * 20 > injected;
    spans;
    sketched = false;
    exemplars = [];
  }

(* Streaming summary: everything is folded at completion time — the
   delay sketch replaces the sorted delay list, the reservoir keeps K
   exemplar spans, and nothing O(completed) survives the run. *)
let summarise_streaming ~workload ~topo ~arrival ~horizon ~cal ~stats ~sketch
    ~reservoir ~(result : int Engine.result) =
  let injected = Array.length cal in
  let completed = Sketch.count sketch in
  let unfinished = injected - completed in
  let pct q = match Sketch.quantile sketch q with Some v -> v | None -> 0. in
  {
    workload = workload_label workload;
    topology = Implicit.label topo;
    arrival = arrival_label arrival;
    horizon;
    injected;
    completed;
    unfinished;
    offered = float_of_int injected /. float_of_int horizon;
    throughput = float_of_int completed /. float_of_int horizon;
    mean_delay = (match Sketch.mean sketch with Some m -> m | None -> 0.);
    p50 = pct 0.5;
    p95 = pct 0.95;
    p99 = pct 0.99;
    max_delay = (match Sketch.max_value sketch with Some m -> m | None -> 0);
    max_backlog = result.max_link_backlog;
    peak_in_flight = stats.Event.peak_in_flight;
    touched = stats.Event.touched;
    executed_rounds = stats.Event.executed_rounds;
    rounds = result.rounds;
    messages = result.messages;
    saturated = unfinished * 20 > injected;
    spans = [];
    sketched = not (Sketch.is_exact sketch);
    exemplars = Reservoir.exemplars reservoir;
  }

let run ?(seed = 0xc0417L) ?(config = Engine.default_config) ?(tail = 0)
    ?center ?drain ?(keep_spans = false) ?(streaming = false) ?(shards = 1)
    ?pool ?metrics ?telemetry ~topo ~workload ~arrival ~horizon () =
  let n = Implicit.n topo in
  let center = match center with Some c -> c | None -> n / 2 in
  let drain = match drain with Some d -> max 0 d | None -> horizon in
  let cal = schedule ~seed arrival ~n ~horizon in
  let stats = Event.fresh_stats () in
  let halt_after = horizon + drain in
  let stream =
    if not streaming then None
    else begin
      let sketch = Sketch.create () in
      let reservoir =
        Reservoir.create ~seed:(Int64.logxor seed 0x51ee9L) ()
      in
      Some (sketch, reservoir)
    end
  in
  let sink =
    Option.map
      (fun (sketch, reservoir) (c : int Engine.completion) ->
        let at, _ = cal.(c.value) in
        let d = c.round - at in
        Sketch.add sketch d;
        Reservoir.note reservoir ~delay:(Some d)
          {
            Span.op = c.value;
            inject_round = at;
            hops = [];
            completion_round = Some c.round;
          })
      stream
  in
  let result =
    match workload with
    | Queuing ->
        let protocol = queuing_protocol ~topo ~tail in
        let injections =
          Array.mapi
            (fun i (at, node) ->
              { Event.at; node; inject = (fun s -> issue_q node i s) })
            cal
        in
        if shards >= 2 then
          Shard.run_implicit ~shards ?pool ?metrics ?telemetry ?sink
            ~injections ~halt_after ~stats ~starters:[] ~topo ~config
            ~protocol ()
        else
          Event.run ?metrics ?telemetry ?sink ~injections ~halt_after ~stats
            ~starters:[] ~topo ~config ~protocol ()
    | Counting ->
        let origin_of i = snd cal.(i) in
        let protocol = counting_protocol ~topo ~center ~origin_of in
        let injections =
          Array.mapi
            (fun i (at, node) ->
              { Event.at; node; inject = (fun s -> issue_c ~topo ~center node i s) })
            cal
        in
        if shards >= 2 then
          Shard.run_implicit ~shards ?pool ?metrics ?telemetry ?sink
            ~injections ~halt_after ~stats ~starters:[] ~topo ~config
            ~protocol ()
        else
          Event.run ?metrics ?telemetry ?sink ~injections ~halt_after ~stats
            ~starters:[] ~topo ~config ~protocol ()
    | Funnel ->
        let root, parent = funnel_tree ~topo "Load.run" in
        let expect = funnel_expectations ~root ~parent ~cal in
        let protocol, issue = funnel_machinery ~root ~parent ~expect in
        let injections =
          Array.mapi
            (fun i (at, node) ->
              { Event.at; node; inject = (fun s -> issue node i ~cohort:at s) })
            cal
        in
        if shards >= 2 then
          Shard.run_implicit ~shards ?pool ?metrics ?telemetry ?sink
            ~injections ~halt_after ~stats ~starters:[] ~topo ~config
            ~protocol ()
        else
          Event.run ?metrics ?telemetry ?sink ~injections ~halt_after ~stats
            ~starters:[] ~topo ~config ~protocol ()
  in
  match stream with
  | Some (sketch, reservoir) ->
      summarise_streaming ~workload ~topo ~arrival ~horizon ~cal ~stats ~sketch
        ~reservoir ~result
  | None ->
      summarise ~workload ~topo ~arrival ~horizon ~keep_spans ~cal ~stats
        ~result

type one_shot_summary = {
  os_requests : int;
  os_completed : int;
  os_rounds : int;
  os_messages : int;
  os_max_backlog : int;
  os_total_delay : int;
  os_max_delay : int;
}

let one_shot ?(config = Engine.default_config) ?(tail = 0) ?center
    ?(shards = 1) ?pool ?stats ~topo ~workload ~requests () =
  (* One-shot delays are completion rounds (issue is at time 0), so the
     summary never looks at the completion values — the fold is
     polymorphic in them, which lets the funnel's [(origin, count)]
     completions share the path with the int-valued workloads. *)
  let summarise_os (type r) ~nreq (result : r Engine.result) =
    let total = ref 0 and maxd = ref 0 in
    List.iter
      (fun (c : r Engine.completion) ->
        total := !total + c.round;
        if c.round > !maxd then maxd := c.round)
      result.completions;
    {
      os_requests = nreq;
      os_completed = List.length result.completions;
      os_rounds = result.rounds;
      os_messages = result.messages;
      os_max_backlog = result.max_link_backlog;
      os_total_delay = !total;
      os_max_delay = !maxd;
    }
  in
  let exec :
      type s m r.
      protocol:(s, m, r) Engine.protocol -> unit -> r Engine.result =
   fun ~protocol () ->
    if shards >= 2 then
      Shard.run_implicit ~shards ?pool ?stats ~starters:requests ~topo ~config
        ~protocol ()
    else Event.run ?stats ~starters:requests ~topo ~config ~protocol ()
  in
  let n = Implicit.n topo in
  let center = match center with Some c -> c | None -> n / 2 in
  let req = Array.of_list requests in
  let nreq = Array.length req in
  let idx_of = Hashtbl.create nreq in
  Array.iteri (fun i v -> Hashtbl.replace idx_of v i) req;
  match workload with
  | Queuing ->
      let base = queuing_protocol ~topo ~tail in
      let protocol =
        {
          base with
          on_start =
            (fun ~node s ->
              match Hashtbl.find_opt idx_of node with
              | Some i -> issue_q node i s
              | None -> (s, []));
        }
      in
      summarise_os ~nreq (exec ~protocol ())
  | Counting ->
      let origin_of i = req.(i) in
      let base = counting_protocol ~topo ~center ~origin_of in
      let protocol =
        {
          base with
          on_start =
            (fun ~node s ->
              match Hashtbl.find_opt idx_of node with
              | Some i -> issue_c ~topo ~center node i s
              | None -> (s, []));
        }
      in
      summarise_os ~nreq (exec ~protocol ())
  | Funnel ->
      let protocol =
        Countq_counting.Funnel.implicit_protocol ~topo ~requests ()
      in
      summarise_os ~nreq (exec ~protocol ())
