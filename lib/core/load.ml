(* Open-loop workload layer. See load.mli. *)

module Engine = Countq_simnet.Engine
module Event = Countq_simnet.Event_engine
module Shard = Countq_simnet.Shard
module Span = Countq_simnet.Span
module Metrics = Countq_simnet.Metrics
module Implicit = Countq_topology.Implicit
module Rng = Countq_util.Rng
module Stats = Countq_util.Stats
module Sketch = Countq_util.Sketch
module Telemetry = Countq_simnet.Telemetry
module Reservoir = Telemetry.Reservoir

type arrival =
  | Poisson of float
  | Bursty of { rate : float; on : int; off : int }
  | Diurnal of { rate : float; period : int }

let arrival_label = function
  | Poisson r -> Printf.sprintf "poisson-%g" r
  | Bursty { rate; on; off } -> Printf.sprintf "bursty-%g-%d-%d" rate on off
  | Diurnal { rate; period } -> Printf.sprintf "diurnal-%g-%d" rate period

(* Knuth's product method, chunked so the e^-λ factor never
   underflows: Poisson(λ) is the sum of ⌈λ/10⌉ independent
   Poisson(λ/⌈λ/10⌉) draws. *)
let poisson_draw rng lambda =
  if lambda <= 0. then 0
  else begin
    let chunks = max 1 (int_of_float (ceil (lambda /. 10.))) in
    let per = lambda /. float_of_int chunks in
    let l = exp (-.per) in
    let total = ref 0 in
    for _ = 1 to chunks do
      let k = ref 0 and p = ref 1.0 in
      let continue = ref true in
      while !continue do
        p := !p *. Rng.float rng;
        if !p > l then incr k else continue := false
      done;
      total := !total + !k
    done;
    !total
  end

let rate_at arrival t =
  match arrival with
  | Poisson r -> r
  | Bursty { rate; on; off } ->
      if (t - 1) mod (on + off) < on then
        rate *. float_of_int (on + off) /. float_of_int on
      else 0.
  | Diurnal { rate; period } ->
      rate
      *. (1. +. sin (2. *. Float.pi *. float_of_int t /. float_of_int period))

let schedule ~seed arrival ~n ~horizon =
  if horizon < 1 then invalid_arg "Load.schedule: horizon must be >= 1";
  if n < 1 then invalid_arg "Load.schedule: n must be >= 1";
  let rng = Rng.create seed in
  let acc = ref [] in
  for t = 1 to horizon do
    let k = poisson_draw rng (rate_at arrival t) in
    let origins = Array.init k (fun _ -> Rng.below rng n) in
    Array.sort compare origins;
    (* Prepend in ascending order; the final [List.rev] restores
       ascending (round, node) order. *)
    for i = 0 to k - 1 do
      acc := (t, origins.(i)) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

type workload = Queuing | Counting

let workload_label = function Queuing -> "queuing" | Counting -> "counting"

type summary = {
  workload : string;
  topology : string;
  arrival : string;
  horizon : int;
  injected : int;
  completed : int;
  unfinished : int;
  offered : float;
  throughput : float;
  mean_delay : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max_delay : int;
  max_backlog : int;
  peak_in_flight : int;
  touched : int;
  executed_rounds : int;
  rounds : int;
  messages : int;
  saturated : bool;
  spans : Span.t list;
  sketched : bool;
  exemplars : (string * Span.t) list;
}

(* ------------------------------------------------------------------ *)
(* Queuing: arrow path reversal (Raymond / Demmer–Herlihy) over the
   implicit topology. link(v) points toward the current queue tail
   (self when v holds it); id(v) is the last operation issued at v.
   Completion values are global op indices; predecessor identity is
   tracked (it is the protocol) but the open-loop observable is the
   completion instant.                                                 *)

type q_state = { link : int; last : int (* op index, -1 = Init *) }
type q_msg = Queue of int

let queuing_protocol ~topo ~tail =
  let nn = Implicit.n topo in
  if tail < 0 || tail >= nn then invalid_arg "Load.run: tail out of range";
  {
    Engine.name = "open-loop-arrow";
    initial_state =
      (fun v ->
        {
          link = (if v = tail then v else Implicit.next_hop topo ~src:v ~dst:tail);
          last = -1;
        });
    on_start = (fun ~node:_ s -> (s, []));
    on_receive =
      (fun ~round:_ ~node ~src (Queue i) s ->
        let w = s.link in
        let s = { s with link = src } in
        if w = node then (s, [ Engine.Complete i ])
        else (s, [ Engine.Send (w, Queue i) ]));
    on_tick = Engine.no_tick;
  }

(* Issuing operation [i] at [v]: local completion if v holds the tail,
   else fire queue(i) at the arrow; either way v becomes the tail. *)
let issue_q v i s =
  if s.link = v then ({ s with last = i }, [ Engine.Complete i ])
  else ({ link = v; last = i }, [ Engine.Send (s.link, Queue i) ])

(* ------------------------------------------------------------------ *)
(* Counting: a central fetch-and-add. Requests route hop-by-hop to the
   centre, the counter increments, the response routes back; the
   operation completes when its origin receives the response. State is
   the counter (meaningful at the centre only).                        *)

type c_msg = { op_idx : int; resp : bool }

let counting_protocol ~topo ~center ~origin_of =
  let nn = Implicit.n topo in
  if center < 0 || center >= nn then invalid_arg "Load.run: center out of range";
  {
    Engine.name = "open-loop-counter";
    initial_state = (fun _ -> 0);
    on_start = (fun ~node:_ s -> (s, []));
    on_receive =
      (fun ~round:_ ~node ~src:_ m s ->
        let target = if m.resp then origin_of m.op_idx else center in
        if m.resp && node = target then (s, [ Engine.Complete m.op_idx ])
        else if (not m.resp) && node = center then
          let m' = { m with resp = true } in
          let dst = origin_of m.op_idx in
          if dst = center then (s + 1, [ Engine.Complete m.op_idx ])
          else
            (s + 1, [ Engine.Send (Implicit.next_hop topo ~src:node ~dst, m') ])
        else (s, [ Engine.Send (Implicit.next_hop topo ~src:node ~dst:target, m) ]));
    on_tick = Engine.no_tick;
  }

let issue_c ~topo ~center v i s =
  if v = center then (s + 1, [ Engine.Complete i ])
  else
    ( s,
      [
        Engine.Send
          (Implicit.next_hop topo ~src:v ~dst:center, { op_idx = i; resp = false });
      ] )

(* ------------------------------------------------------------------ *)

let summarise ~workload ~topo ~arrival ~horizon ~keep_spans ~cal ~stats
    ~(result : int Engine.result) =
  let injected = Array.length cal in
  let completion_round = Array.make injected (-1) in
  List.iter
    (fun (c : int Engine.completion) -> completion_round.(c.value) <- c.round)
    result.completions;
  let delays = ref [] in
  let completed = ref 0 in
  let max_delay = ref 0 in
  let sum_delay = ref 0 in
  Array.iteri
    (fun i (at, _) ->
      if completion_round.(i) >= 0 then begin
        incr completed;
        let d = completion_round.(i) - at in
        delays := d :: !delays;
        sum_delay := !sum_delay + d;
        if d > !max_delay then max_delay := d
      end)
    cal;
  let completed = !completed in
  let pct q =
    match Stats.percentile_ints !delays q with Some v -> v | None -> 0.
  in
  let spans =
    if not keep_spans then []
    else
      Array.to_list
        (Array.mapi
           (fun i (at, _) ->
             {
               Span.op = i;
               inject_round = at;
               hops = [];
               completion_round =
                 (if completion_round.(i) >= 0 then Some completion_round.(i)
                  else None);
             })
           cal)
  in
  let unfinished = injected - completed in
  {
    workload = workload_label workload;
    topology = Implicit.label topo;
    arrival = arrival_label arrival;
    horizon;
    injected;
    completed;
    unfinished;
    offered = float_of_int injected /. float_of_int horizon;
    throughput = float_of_int completed /. float_of_int horizon;
    mean_delay =
      (if completed = 0 then 0.
       else float_of_int !sum_delay /. float_of_int completed);
    p50 = pct 0.5;
    p95 = pct 0.95;
    p99 = pct 0.99;
    max_delay = !max_delay;
    max_backlog = result.max_link_backlog;
    peak_in_flight = stats.Event.peak_in_flight;
    touched = stats.Event.touched;
    executed_rounds = stats.Event.executed_rounds;
    rounds = result.rounds;
    messages = result.messages;
    saturated = unfinished * 20 > injected;
    spans;
    sketched = false;
    exemplars = [];
  }

(* Streaming summary: everything is folded at completion time — the
   delay sketch replaces the sorted delay list, the reservoir keeps K
   exemplar spans, and nothing O(completed) survives the run. *)
let summarise_streaming ~workload ~topo ~arrival ~horizon ~cal ~stats ~sketch
    ~reservoir ~(result : int Engine.result) =
  let injected = Array.length cal in
  let completed = Sketch.count sketch in
  let unfinished = injected - completed in
  let pct q = match Sketch.quantile sketch q with Some v -> v | None -> 0. in
  {
    workload = workload_label workload;
    topology = Implicit.label topo;
    arrival = arrival_label arrival;
    horizon;
    injected;
    completed;
    unfinished;
    offered = float_of_int injected /. float_of_int horizon;
    throughput = float_of_int completed /. float_of_int horizon;
    mean_delay = (match Sketch.mean sketch with Some m -> m | None -> 0.);
    p50 = pct 0.5;
    p95 = pct 0.95;
    p99 = pct 0.99;
    max_delay = (match Sketch.max_value sketch with Some m -> m | None -> 0);
    max_backlog = result.max_link_backlog;
    peak_in_flight = stats.Event.peak_in_flight;
    touched = stats.Event.touched;
    executed_rounds = stats.Event.executed_rounds;
    rounds = result.rounds;
    messages = result.messages;
    saturated = unfinished * 20 > injected;
    spans = [];
    sketched = not (Sketch.is_exact sketch);
    exemplars = Reservoir.exemplars reservoir;
  }

let run ?(seed = 0xc0417L) ?(config = Engine.default_config) ?(tail = 0)
    ?center ?drain ?(keep_spans = false) ?(streaming = false) ?(shards = 1)
    ?pool ?metrics ?telemetry ~topo ~workload ~arrival ~horizon () =
  let n = Implicit.n topo in
  let center = match center with Some c -> c | None -> n / 2 in
  let drain = match drain with Some d -> max 0 d | None -> horizon in
  let cal = schedule ~seed arrival ~n ~horizon in
  let stats = Event.fresh_stats () in
  let halt_after = horizon + drain in
  let stream =
    if not streaming then None
    else begin
      let sketch = Sketch.create () in
      let reservoir =
        Reservoir.create ~seed:(Int64.logxor seed 0x51ee9L) ()
      in
      Some (sketch, reservoir)
    end
  in
  let sink =
    Option.map
      (fun (sketch, reservoir) (c : int Engine.completion) ->
        let at, _ = cal.(c.value) in
        let d = c.round - at in
        Sketch.add sketch d;
        Reservoir.note reservoir ~delay:(Some d)
          {
            Span.op = c.value;
            inject_round = at;
            hops = [];
            completion_round = Some c.round;
          })
      stream
  in
  let result =
    match workload with
    | Queuing ->
        let protocol = queuing_protocol ~topo ~tail in
        let injections =
          Array.mapi
            (fun i (at, node) ->
              { Event.at; node; inject = (fun s -> issue_q node i s) })
            cal
        in
        if shards >= 2 then
          Shard.run_implicit ~shards ?pool ?metrics ?telemetry ?sink
            ~injections ~halt_after ~stats ~starters:[] ~topo ~config
            ~protocol ()
        else
          Event.run ?metrics ?telemetry ?sink ~injections ~halt_after ~stats
            ~starters:[] ~topo ~config ~protocol ()
    | Counting ->
        let origin_of i = snd cal.(i) in
        let protocol = counting_protocol ~topo ~center ~origin_of in
        let injections =
          Array.mapi
            (fun i (at, node) ->
              { Event.at; node; inject = (fun s -> issue_c ~topo ~center node i s) })
            cal
        in
        if shards >= 2 then
          Shard.run_implicit ~shards ?pool ?metrics ?telemetry ?sink
            ~injections ~halt_after ~stats ~starters:[] ~topo ~config
            ~protocol ()
        else
          Event.run ?metrics ?telemetry ?sink ~injections ~halt_after ~stats
            ~starters:[] ~topo ~config ~protocol ()
  in
  match stream with
  | Some (sketch, reservoir) ->
      summarise_streaming ~workload ~topo ~arrival ~horizon ~cal ~stats ~sketch
        ~reservoir ~result
  | None ->
      summarise ~workload ~topo ~arrival ~horizon ~keep_spans ~cal ~stats
        ~result

type one_shot_summary = {
  os_requests : int;
  os_completed : int;
  os_rounds : int;
  os_messages : int;
  os_max_backlog : int;
  os_total_delay : int;
  os_max_delay : int;
}

let one_shot ?(config = Engine.default_config) ?(tail = 0) ?center
    ?(shards = 1) ?pool ?stats ~topo ~workload ~requests () =
  let exec :
      type s m. protocol:(s, m, int) Engine.protocol -> unit -> int Engine.result
      =
   fun ~protocol () ->
    if shards >= 2 then
      Shard.run_implicit ~shards ?pool ?stats ~starters:requests ~topo ~config
        ~protocol ()
    else Event.run ?stats ~starters:requests ~topo ~config ~protocol ()
  in
  let n = Implicit.n topo in
  let center = match center with Some c -> c | None -> n / 2 in
  let req = Array.of_list requests in
  let idx_of = Hashtbl.create (Array.length req) in
  Array.iteri (fun i v -> Hashtbl.replace idx_of v i) req;
  let result =
    match workload with
    | Queuing ->
        let base = queuing_protocol ~topo ~tail in
        let protocol =
          {
            base with
            on_start =
              (fun ~node s ->
                match Hashtbl.find_opt idx_of node with
                | Some i -> issue_q node i s
                | None -> (s, []));
          }
        in
        exec ~protocol ()
    | Counting ->
        let origin_of i = req.(i) in
        let base = counting_protocol ~topo ~center ~origin_of in
        let protocol =
          {
            base with
            on_start =
              (fun ~node s ->
                match Hashtbl.find_opt idx_of node with
                | Some i -> issue_c ~topo ~center node i s
                | None -> (s, []));
          }
        in
        exec ~protocol ()
  in
  let total = ref 0 and maxd = ref 0 in
  List.iter
    (fun (c : int Engine.completion) ->
      total := !total + c.round;
      if c.round > !maxd then maxd := c.round)
    result.completions;
  {
    os_requests = Array.length req;
    os_completed = List.length result.completions;
    os_rounds = result.rounds;
    os_messages = result.messages;
    os_max_backlog = result.max_link_backlog;
    os_total_delay = !total;
    os_max_delay = !maxd;
  }
