(* The arrow protocol on the synchronous simulator. See protocol.mli. *)

module Engine = Countq_simnet.Engine
module Async = Countq_simnet.Async
module Faults = Countq_simnet.Faults
module Monitor = Countq_simnet.Monitor
module Reliable = Countq_simnet.Reliable
module Tree = Countq_topology.Tree

type msg =
  | Queue_msg of Types.op
  | Notify of { dest : int; op : Types.op; pred : Types.pred }

(* Per-node protocol state. [link] is the arrow; [id] the identity of
   the last operation issued locally (read when a queue message
   terminates here). [schedule] lists this node's future issue rounds
   (one-shot: just [0] or empty); [seq_next] numbers local issues. *)
type state = {
  link : int;
  id : Types.pred;
  schedule : int list;
  seq_next : int;
}

type run_result = {
  outcomes : Types.outcome list;
  order : (Types.op list, Order.error) result;
  rounds : int;
  messages : int;
  total_delay : int;
  max_delay : int;
  expansion : int;
}

(* Found the predecessor of [op] at node [v]: either complete on the
   spot (the Herlihy-Tirthapura-Wattenhofer delay semantics) or, in
   notify mode, route the answer back to the operation's origin along
   the tree so the origin itself learns its predecessor. *)
let found ~tree ~notify v (op : Types.op) pred =
  if (not notify) || op.origin = v then [ Engine.Complete (op, pred) ]
  else
    [ Engine.Send (Tree.next_hop tree v op.origin, Notify { dest = op.origin; op; pred }) ]

(* Issue an operation at node [v] whose current state is [s]: record the
   new id, and either complete locally (v holds the tail) or launch a
   queue() message at the old arrow and flip the arrow to self. *)
let issue ~tree ~notify v s =
  let op = { Types.origin = v; seq = s.seq_next } in
  let s' = { s with id = Types.Op op; seq_next = s.seq_next + 1 } in
  if s.link = v then ({ s' with link = v }, found ~tree ~notify v op s.id)
  else ({ s' with link = v }, [ Engine.Send (s.link, Queue_msg op) ])

let make_protocol ~tree ~tail ~issue_rounds ~long_lived ~notify =
  let initial_state v =
    {
      link = (if v = tail then v else Tree.next_hop tree v tail);
      id = Types.Init;
      schedule = issue_rounds v;
      seq_next = 0;
    }
  in
  let on_start ~node s =
    (* Issue every operation scheduled for time 0 (there can be several
       in the long-lived scenario). *)
    let rec drain s acc =
      match s.schedule with
      | 0 :: rest ->
          let s, actions = issue ~tree ~notify node { s with schedule = rest } in
          drain s (acc @ actions)
      | _ -> (s, acc)
    in
    drain s []
  in
  let on_receive ~round:_ ~node ~src msg s =
    match msg with
    | Queue_msg op ->
        let old = s.link in
        let s = { s with link = src } in
        if old = node then (s, found ~tree ~notify node op s.id)
        else (s, [ Engine.Send (old, Queue_msg op) ])
    | Notify { dest; op; pred } ->
        if dest = node then (s, [ Engine.Complete (op, pred) ])
        else
          (s, [ Engine.Send (Tree.next_hop tree node dest, Notify { dest; op; pred }) ])
  in
  let on_tick =
    if not long_lived then Engine.no_tick
    else
      Some
        (fun ~round ~node s ->
          (* Drain every arrival due at (or before) this round — a node
             may schedule several operations for the same round. *)
          let rec drain s acc =
            match s.schedule with
            | r :: rest when r <= round ->
                let s, actions = issue ~tree ~notify node { s with schedule = rest } in
                drain s (acc @ actions)
            | _ -> (s, acc)
          in
          drain s [])
  in
  { Engine.name = "arrow"; initial_state; on_start; on_receive; on_tick }

let check_tail tree tail =
  if tail < 0 || tail >= Tree.n tree then
    invalid_arg "Arrow: tail out of range"

let finish ~issue_time (res : (Types.op * Types.pred) Engine.result) =
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        let delay = c.round - issue_time op in
        { Types.op; pred; found_at = c.node; round = delay })
      res.completions
  in
  {
    outcomes;
    order = Order.chain outcomes;
    rounds = res.rounds;
    messages = res.messages;
    total_delay = Order.total_delay outcomes;
    max_delay = Order.max_delay outcomes;
    expansion = res.expansion;
  }

let one_shot_setup ?config ?tail ~notify ~tree ~requests name =
  let n = Tree.n tree in
  let tail = Option.value tail ~default:(Tree.root tree) in
  check_tail tree tail;
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg (name ^ ": request out of range");
      if requesting.(v) then invalid_arg (name ^ ": duplicate request node");
      requesting.(v) <- true)
    requests;
  let config =
    match config with
    | Some c -> c
    | None -> Engine.config_with_capacity (max 1 (Tree.max_degree tree))
  in
  let protocol =
    make_protocol ~tree ~tail
      ~issue_rounds:(fun v -> if requesting.(v) then [ 0 ] else [])
      ~long_lived:false ~notify
  in
  (config, protocol)

type checker_state = state
type checker_msg = msg

let one_shot_protocol ?tail ?(notify = false) ~tree ~requests () =
  let _, protocol =
    one_shot_setup ?tail ~notify ~tree ~requests "Arrow.one_shot_protocol"
  in
  protocol

let run_one_shot ?config ?tail ?(notify = false) ~tree ~requests () =
  let config, protocol =
    one_shot_setup ?config ?tail ~notify ~tree ~requests "Arrow.run_one_shot"
  in
  let graph = Tree.to_graph tree in
  finish ~issue_time:(fun _ -> 0) (Engine.run ~graph ~config ~protocol ())

let run_one_shot_traced ?config ?tail ?(notify = false) ~tree ~requests () =
  let config, protocol =
    one_shot_setup ?config ?tail ~notify ~tree ~requests
      "Arrow.run_one_shot_traced"
  in
  let protocol, events = Countq_simnet.Trace.instrument protocol in
  let graph = Tree.to_graph tree in
  let result =
    finish ~issue_time:(fun _ -> 0) (Engine.run ~graph ~config ~protocol ())
  in
  (result, events ())

let run_one_shot_observed ?config ?tail ?(notify = false) ?plan ~metrics ~tree
    ~requests () =
  let config, protocol =
    one_shot_setup ?config ?tail ~notify ~tree ~requests
      "Arrow.run_one_shot_observed"
  in
  (* One-shot ops are unique per origin, so the origin node ids the op. *)
  let protocol, spans =
    Countq_simnet.Span.instrument
      ~injects:(List.map (fun v -> (v, 0)) requests)
      ~op_of_msg:(function
        | Queue_msg (op : Types.op) | Notify { op; _ } -> Some op.origin)
      ~op_of_completion:(fun ((op : Types.op), _) -> Some op.origin)
      protocol
  in
  let graph = Tree.to_graph tree in
  let faults = Option.map Faults.start plan in
  let result =
    finish ~issue_time:(fun _ -> 0)
      (Engine.run ?faults ~metrics ~graph ~config ~protocol ())
  in
  (result, spans (), Option.map Faults.stats faults)

type fault_report = {
  result : run_result;
  injected : Faults.stats;
  monitors : Monitor.report;
  retry : Reliable.stats option;
}

(* Safety: the completions (op, pred) must form an injective
   predecessor mapping with a single head — the online fragment of
   Order.chain. Liveness: every request completes, and silence longer
   than [budget] rounds is a stall. *)
let one_shot_monitors ~budget ~expected =
  [
    Monitor.chain_consistent
      ~op:(fun ((op : Types.op), _) -> (op.origin, op.seq))
      ~pred:(fun (_, p) ->
        match p with Types.Init -> None | Types.Op q -> Some (q.origin, q.seq));
    Monitor.completes ~expected;
    Monitor.progress ~budget ();
  ]

let default_progress_budget ~ack_timeout ~max_retries =
  (* Longer than the worst legitimate silence: a full exponential
     backoff ladder, with slack for round-trips. *)
  max 512 (4 * ack_timeout * (1 lsl max_retries))

let run_one_shot_faulty ?config ?tail ?(notify = false) ?(retry = false)
    ?(ack_timeout = 8) ?(max_retries = 5) ?progress_budget ~plan ~tree
    ~requests () =
  let config, protocol =
    one_shot_setup ?config ?tail ~notify ~tree ~requests
      "Arrow.run_one_shot_faulty"
  in
  let budget =
    match progress_budget with
    | Some b -> b
    | None -> default_progress_budget ~ack_timeout ~max_retries
  in
  let monitors =
    one_shot_monitors ~budget ~expected:(List.length requests)
  in
  let observer = Monitor.observe monitors in
  let fr = Faults.start plan in
  let graph = Tree.to_graph tree in
  let res, retry_stats =
    if retry then begin
      let protocol, h = Reliable.wrap ~ack_timeout ~max_retries protocol in
      let res =
        Engine.run ~faults:fr ~observer ~keep_alive:(Reliable.keep_alive h)
          ~graph ~config ~protocol ()
      in
      (res, Some (Reliable.stats h))
    end
    else (Engine.run ~faults:fr ~observer ~graph ~config ~protocol (), None)
  in
  {
    result = finish ~issue_time:(fun _ -> 0) res;
    injected = Faults.stats fr;
    monitors = Monitor.finalise monitors;
    retry = retry_stats;
  }

let run_one_shot_async ?(delay = Async.Constant 1) ?tail ?(notify = false)
    ~tree ~requests () =
  let n = Tree.n tree in
  let tail = Option.value tail ~default:(Tree.root tree) in
  check_tail tree tail;
  let requesting = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Arrow.run_one_shot_async: request out of range";
      if requesting.(v) then
        invalid_arg "Arrow.run_one_shot_async: duplicate request node";
      requesting.(v) <- true)
    requests;
  let protocol =
    make_protocol ~tree ~tail
      ~issue_rounds:(fun v -> if requesting.(v) then [ 0 ] else [])
      ~long_lived:false ~notify
  in
  let graph = Tree.to_graph tree in
  let res = Async.run ~graph ~delay ~protocol () in
  let outcomes =
    List.map
      (fun (c : _ Engine.completion) ->
        let op, pred = c.value in
        { Types.op; pred; found_at = c.node; round = c.round })
      res.completions
  in
  {
    outcomes;
    order = Order.chain outcomes;
    rounds = res.finish_time;
    messages = res.messages;
    total_delay = Order.total_delay outcomes;
    max_delay = Order.max_delay outcomes;
    expansion = 1;
  }

let run_long_lived ?config ?tail ?(notify = false) ~tree ~arrivals () =
  let n = Tree.n tree in
  let tail = Option.value tail ~default:(Tree.root tree) in
  check_tail tree tail;
  List.iter
    (fun (v, r) ->
      if v < 0 || v >= n then
        invalid_arg "Arrow.run_long_lived: arrival node out of range";
      if r < 0 then invalid_arg "Arrow.run_long_lived: negative arrival round")
    arrivals;
  let per_node = Array.make n [] in
  List.iter (fun (v, r) -> per_node.(v) <- r :: per_node.(v)) arrivals;
  Array.iteri
    (fun v rounds -> per_node.(v) <- List.sort compare rounds)
    per_node;
  (* Issue time of op {origin; seq} = the seq-th scheduled round. *)
  let issue_time (op : Types.op) = List.nth per_node.(op.origin) op.seq in
  let horizon = List.fold_left (fun acc (_, r) -> max acc r) 0 arrivals in
  let config =
    match config with
    | Some c -> { c with Engine.min_rounds = max c.Engine.min_rounds (horizon + 1) }
    | None ->
        {
          (Engine.config_with_capacity (max 1 (Tree.max_degree tree))) with
          min_rounds = horizon + 1;
        }
  in
  let protocol =
    make_protocol ~tree ~tail
      ~issue_rounds:(fun v -> per_node.(v))
      ~long_lived:true ~notify
  in
  let graph = Tree.to_graph tree in
  finish ~issue_time (Engine.run ~graph ~config ~protocol ())
