(** The arrow protocol (Raymond '89; Demmer–Herlihy '98) — the queuing
    algorithm whose concurrent one-shot complexity upper-bounds
    [C_Q(G)] in Section 4 of the paper.

    The protocol runs path reversal on a spanning tree [T]: every node
    keeps an arrow [link(v)] pointing at the tree neighbour in whose
    direction the current queue tail lies (or at itself if it is the
    tail). A node issuing operation [a] records [id(v) := a], fires a
    [queue(a)] message at its arrow and flips the arrow to itself; a
    node relaying [queue(a)] flips its arrow back toward the sender; a
    [queue(a)] arriving at a node whose arrow is self terminates — [a]
    is queued behind that node's last operation.

    Delay semantics: an operation's queuing delay is the round in which
    its [queue] message terminates (discovers the predecessor), the
    definition under which Herlihy, Tirthapura and Wattenhofer proved
    the nearest-neighbour-TSP bound that Theorem 4.1 cites.

    The simulation runs with an expanded-step receive capacity equal to
    the tree's maximum degree, exactly as Section 4 prescribes
    ("concurrent [queue()] messages are processed in the same expanded
    time step"); pass a custom [config] to override. *)

type run_result = {
  outcomes : Types.outcome list;
      (** one per issued operation; [round] is the per-op delay
          (completion round minus issue round). *)
  order : (Types.op list, Order.error) result;
      (** the reconstructed total order, or the validation failure. *)
  rounds : int;  (** makespan of the whole execution in rounds. *)
  messages : int;  (** total [queue()] messages delivered. *)
  total_delay : int;  (** Eq. (1)'s inner sum for this run. *)
  max_delay : int;
  expansion : int;  (** receive capacity used (tree degree by default). *)
}

val run_one_shot :
  ?config:Countq_simnet.Engine.config ->
  ?tail:int ->
  ?notify:bool ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  run_result
(** [run_one_shot ~tree ~requests ()] executes the concurrent one-shot
    scenario: all nodes in [requests] issue at time 0. [tail] is the
    initial tail position (default: the tree root). Requests must be
    distinct node ids of the tree.

    [notify] (default [false]) appends a notification leg: after a
    [queue()] message terminates, the discovered predecessor identity
    is routed back to the operation's origin along the tree, and the
    delay is measured at the origin's receipt — the variant an
    application like ordered multicast needs, at roughly twice the
    message cost. With [notify = false] delays use the
    Herlihy–Tirthapura–Wattenhofer semantics (termination instant)
    that Theorem 4.1 is stated for.
    @raise Invalid_argument on bad requests or tail. *)

type checker_state
type checker_msg
(** Abstract views of the protocol's internals, exposed only so the
    exhaustive schedule explorer ([Countq_simnet.Explore]) can drive
    the very same protocol value the runners use. *)

val one_shot_protocol :
  ?tail:int ->
  ?notify:bool ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  (checker_state, checker_msg, Types.op * Types.pred) Countq_simnet.Engine.protocol
(** The raw one-shot protocol value (state pure and structural, so
    configurations memoise correctly). Completion values are
    [(op, predecessor)] pairs — validate them with {!Order.chain}. *)

val run_one_shot_traced :
  ?config:Countq_simnet.Engine.config ->
  ?tail:int ->
  ?notify:bool ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  run_result * Countq_simnet.Trace.event list
(** {!run_one_shot} with event tracing — behaviour and results are
    identical; the second component is the chronological event log
    (render it with [Countq_simnet.Trace.render]). Intended for small
    demonstrations of the path-reversal mechanics. *)

val run_one_shot_observed :
  ?config:Countq_simnet.Engine.config ->
  ?tail:int ->
  ?notify:bool ->
  ?plan:Countq_simnet.Faults.plan ->
  metrics:Countq_simnet.Metrics.t ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  run_result * Countq_simnet.Span.t list * Countq_simnet.Faults.stats option
(** {!run_one_shot} under full observability: per-node / per-edge
    counters recorded into [metrics] (create one per run) and a causal
    {!Countq_simnet.Span} per operation, keyed by origin node. [plan]
    optionally injects faults (no retransmit layer and no monitors —
    use {!run_one_shot_faulty} for verdicts); the third component is
    the injection tally when a plan was given. With no plan the
    results equal {!run_one_shot}'s. *)

type fault_report = {
  result : run_result;  (** outcomes of whatever completed. *)
  injected : Countq_simnet.Faults.stats;  (** what the plan actually did. *)
  monitors : Countq_simnet.Monitor.report;
      (** runtime verdicts: chain consistency (safety), full completion
          and progress (liveness). *)
  retry : Countq_simnet.Reliable.stats option;
      (** retransmit-layer tally; [None] when [retry] was off. *)
}

val run_one_shot_faulty :
  ?config:Countq_simnet.Engine.config ->
  ?tail:int ->
  ?notify:bool ->
  ?retry:bool ->
  ?ack_timeout:int ->
  ?max_retries:int ->
  ?progress_budget:int ->
  plan:Countq_simnet.Faults.plan ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  fault_report
(** {!run_one_shot} on an unreliable substrate, with runtime invariant
    monitors attached. [plan] is the fault schedule (see
    {!Countq_simnet.Faults}); with [retry] (default [false]) every hop
    runs under the {!Countq_simnet.Reliable} timeout-and-retransmit
    layer ([ack_timeout] rounds before the first retransmit, default
    8; [max_retries] with exponential backoff, default 5), which is
    what lets a one-shot execution survive message drops. The progress
    monitor halts a stalled run after [progress_budget] silent rounds
    (default: comfortably above the retransmit layer's longest
    backoff). With [plan = Faults.none] and [retry = false] the result
    equals {!run_one_shot}'s. *)

val run_one_shot_async :
  ?delay:Countq_simnet.Async.delay_model ->
  ?tail:int ->
  ?notify:bool ->
  tree:Countq_topology.Tree.t ->
  requests:int list ->
  unit ->
  run_result
(** The one-shot scenario under the asynchronous engine (Section 2.1's
    "general asynchronous model"): per-message link delays from
    [delay] (default [Constant 1]) instead of lockstep rounds. The
    arrow protocol's safety — a single valid total order — must (and,
    per the property tests, does) survive arbitrary delays; its delay
    bounds need not. [expansion] is reported as 1: event-time nodes
    already serialise at one message per time unit. *)

val run_long_lived :
  ?config:Countq_simnet.Engine.config ->
  ?tail:int ->
  ?notify:bool ->
  tree:Countq_topology.Tree.t ->
  arrivals:(int * int) list ->
  unit ->
  run_result
(** [run_long_lived ~tree ~arrivals ()] executes the long-lived
    scenario of Kuhn–Wattenhofer: [arrivals] is a list of
    [(node, round)] pairs, [round >= 0]; a node may appear several
    times (its operations get increasing [seq] numbers in round
    order). Per-op delays are measured from each operation's issue
    round. The Theorem 4.1 comparison against the nearest-neighbour
    TSP bound lives in the [Countq] core library, which combines this
    module with [Countq_tsp]. *)
