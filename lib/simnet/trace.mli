(** Execution tracing: wrap any protocol to record its events, and
    render them as an ASCII timeline.

    Tracing is protocol-level instrumentation (the engine itself stays
    oblivious): {!instrument} returns a protocol that behaves
    identically while logging every delivery, queued send and
    completion. Intended for small runs — demos, debugging, and the
    [countq trace] CLI subcommand that shows the arrow protocol's path
    reversal happening round by round. *)

type event =
  | Received of { round : int; node : int; src : int }
  | Queued_send of { round : int; node : int; dst : int }
  | Completed of { round : int; node : int }

val instrument :
  ('s, 'm, 'r) Engine.protocol ->
  ('s, 'm, 'r) Engine.protocol * (unit -> event list)
(** [instrument p] is [(p', events)]: [p'] behaves exactly like [p];
    [events ()] returns everything recorded so far in chronological
    order. The recorder is shared mutable state — use one instrumented
    protocol per run. *)

val render : n:int -> event list -> string
(** [render ~n events] draws a node-by-round timeline: rows are nodes
    [0 .. n-1], columns are rounds; cell characters are [*] (completed),
    [R] (received), [s] (queued a send), [+] (received and queued),
    [.] (idle). Multiple events in one cell favour the most
    informative character. *)

val to_jsonl : event list -> string
(** One JSON object per line, in input order: [{"type":"recv","round":…,
    "node":…,"src":…}], [{"type":"send",…,"dst":…}] or
    [{"type":"complete","round":…,"node":…}]. *)

val of_jsonl : string -> (event list, string) result
(** Parse {!to_jsonl} output (blank lines ignored); inverse of
    {!to_jsonl}, so [of_jsonl (to_jsonl es) = Ok es]. [Error] carries
    a message naming the first offending line. *)

val pp_event : Format.formatter -> event -> unit
