(* Causal operation spans. See span.mli. *)

type hop = {
  h_src : int;
  h_dst : int;
  queued_round : int;
  delivered_round : int;
}

type t = {
  op : int;
  inject_round : int;
  hops : hop list;
  completion_round : int option;
}

let hop_wait h = h.delivered_round - h.queued_round - 1

let delay s =
  Option.map (fun c -> c - s.inject_round) s.completion_round

(* Mutable per-operation accumulator; hops collect in reverse. *)
type acc = {
  a_inject : int;
  mutable a_hops : hop list;
  mutable a_completion : int option;
}

let instrument ?(injects = []) ~op_of_msg ~op_of_completion
    (p : _ Engine.protocol) =
  let spans : (int, acc) Hashtbl.t = Hashtbl.create 64 in
  (* FIFO of queued_rounds per (op, src, dst): links are FIFO, so the
     k-th delivery of an op's messages on a link matches the k-th send. *)
  let pending : (int * int * int, int Queue.t) Hashtbl.t = Hashtbl.create 64 in
  let get op round =
    match Hashtbl.find_opt spans op with
    | Some a -> a
    | None ->
        let a = { a_inject = round; a_hops = []; a_completion = None } in
        Hashtbl.add spans op a;
        a
  in
  List.iter (fun (op, round) -> ignore (get op round)) injects;
  let record_actions round node actions =
    List.iter
      (fun action ->
        match action with
        | Engine.Send (dst, msg) -> (
            match op_of_msg msg with
            | None -> ()
            | Some op ->
                ignore (get op round);
                let key = (op, node, dst) in
                let q =
                  match Hashtbl.find_opt pending key with
                  | Some q -> q
                  | None ->
                      let q = Queue.create () in
                      Hashtbl.add pending key q;
                      q
                in
                Queue.push round q)
        | Engine.Complete r -> (
            match op_of_completion r with
            | None -> ()
            | Some op ->
                let a = get op round in
                if a.a_completion = None then a.a_completion <- Some round))
      actions
  in
  let record_delivery round node src msg =
    match op_of_msg msg with
    | None -> ()
    | Some op ->
        let a = get op round in
        let queued =
          match Hashtbl.find_opt pending (op, src, node) with
          | Some q when not (Queue.is_empty q) -> Queue.pop q
          | _ ->
              (* No matching send: a fault-injected duplicate. Charge a
                 plain one-round transit (zero wait). *)
              round - 1
        in
        a.a_hops <-
          { h_src = src; h_dst = node; queued_round = queued;
            delivered_round = round }
          :: a.a_hops
  in
  let p' =
    {
      p with
      Engine.on_start =
        (fun ~node s ->
          let s, actions = p.Engine.on_start ~node s in
          record_actions 0 node actions;
          (s, actions));
      on_receive =
        (fun ~round ~node ~src msg s ->
          record_delivery round node src msg;
          let s, actions = p.Engine.on_receive ~round ~node ~src msg s in
          record_actions round node actions;
          (s, actions));
      on_tick =
        Option.map
          (fun tick ~round ~node s ->
            let s, actions = tick ~round ~node s in
            record_actions round node actions;
            (s, actions))
          p.Engine.on_tick;
    }
  in
  let snapshot () =
    Hashtbl.fold
      (fun op (a : acc) l ->
        {
          op;
          inject_round = a.a_inject;
          hops = List.rev a.a_hops;
          completion_round = a.a_completion;
        }
        :: l)
      spans []
    |> List.sort (fun s1 s2 -> compare s1.op s2.op)
  in
  (p', snapshot)

let to_jsonl spans =
  let module J = Countq_util.Json in
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      let hops =
        J.Arr
          (List.map
             (fun h ->
               J.Obj
                 [
                   ("src", J.Int h.h_src);
                   ("dst", J.Int h.h_dst);
                   ("queued", J.Int h.queued_round);
                   ("delivered", J.Int h.delivered_round);
                   ("wait", J.Int (hop_wait h));
                 ])
             s.hops)
      in
      let fields =
        [ ("type", J.Str "span"); ("op", J.Int s.op);
          ("inject", J.Int s.inject_round) ]
        @ (match s.completion_round with
          | Some c ->
              [ ("complete", J.Int c);
                ("delay", J.Int (c - s.inject_round)) ]
          | None -> [])
        @ [ ("hops", hops) ]
      in
      Buffer.add_string buf (J.to_string (J.Obj fields));
      Buffer.add_char buf '\n')
    spans;
  Buffer.contents buf

let pp ppf s =
  let worst = List.fold_left (fun acc h -> max acc (hop_wait h)) 0 s.hops in
  match s.completion_round with
  | Some c ->
      Format.fprintf ppf "op %d: t=%d -> t=%d (delay %d, %d hops, worst wait %d)"
        s.op s.inject_round c (c - s.inject_round) (List.length s.hops) worst
  | None ->
      Format.fprintf ppf "op %d: t=%d -> incomplete (%d hops, worst wait %d)"
        s.op s.inject_round (List.length s.hops) worst
