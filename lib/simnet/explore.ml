(* Bounded model checker over asynchronous interleavings. See
   explore.mli for the canonicalisation and reduction arguments. *)

module Graph = Countq_topology.Graph
module Parallel = Countq_util.Parallel

type stats = {
  explored : int;
  terminal : int;
  max_frontier : int;
  dedup_hits : int;
}

type outcome = Exhaustive of stats | Budget_exhausted of stats

exception Violation of string

(* An immutable configuration. Queues are lists with the head first;
   everything inside must be pure and structural (no closures or
   cycles), which holds for the pure-state protocols this checker
   targets. [events] is the monotone event counter of the
   representative execution that first reached the configuration; it
   is deliberately NOT part of the configuration's identity. *)
type ('s, 'm, 'r) config = {
  states : 's array;
  outbox : (int * 'm) list array; (* per node, FIFO; all empty when reduced *)
  links : ((int * int) * 'm list) list; (* sorted by key, FIFO per link *)
  completions : 'r Engine.completion list; (* reverse order of occurrence *)
  events : int;
}

let link_get links key =
  match List.assoc_opt key links with Some q -> q | None -> []

let link_set links key q =
  let without = List.remove_assoc key links in
  if q = [] then without
  else List.sort (fun (a, _) (b, _) -> compare a b) ((key, q) :: without)

(* The canonical serialisation. States, outboxes and links are
   canonical by construction (links sorted, empty queues dropped);
   completions drop their round stamps, which describe the
   representative execution rather than the state. Marshal without
   sharing is purely structural — equal values serialise equally. *)
let canonical_key cfg =
  Marshal.to_string
    ( cfg.states,
      cfg.outbox,
      cfg.links,
      List.map
        (fun (c : _ Engine.completion) -> (c.node, c.value))
        cfg.completions )
    [ Marshal.No_sharing ]

let run ~graph ~protocol ~check ?(max_configs = 1_000_000) ?(reduce = true)
    ?pool () =
  let n = Graph.n graph in
  (* One shared all-empty outbox for every drained configuration: the
     reduction keeps outboxes empty, so there is no point allocating
     (or serialising differently) a fresh array per state. Never
     mutated. *)
  let empty_outbox = Array.make n [] in
  let check_send ~node dst =
    if not (Graph.has_edge graph node dst) then
      raise (Engine.Not_a_neighbor { node; dst })
  in
  (* Append [sends] (FIFO order, all from [src]) onto their links: the
     canonical transmit chain the reduction collapses into the
     delivery step that produced them. Each transmit is one event. *)
  let drain ~src ~links ~events sends =
    List.fold_left
      (fun (links, events) (dst, msg) ->
        let key = (src, dst) in
        (link_set links key (link_get links key @ [ msg ]), events + 1))
      (links, events) sends
  in
  (* Initial configuration: on_start everywhere at time 0. *)
  let initial =
    let states = Array.init n protocol.Engine.initial_state in
    let outbox = Array.make n [] in
    let completions = ref [] in
    for v = 0 to n - 1 do
      let s, actions = protocol.Engine.on_start ~node:v states.(v) in
      states.(v) <- s;
      List.iter
        (fun action ->
          match action with
          | Engine.Send (dst, msg) ->
              check_send ~node:v dst;
              outbox.(v) <- outbox.(v) @ [ (dst, msg) ]
          | Engine.Complete value ->
              completions :=
                { Engine.node = v; round = 0; value } :: !completions)
        actions
    done;
    if reduce then begin
      let links, events = ref [], ref 0 in
      Array.iteri
        (fun v q ->
          let l, e = drain ~src:v ~links:!links ~events:!events q in
          links := l;
          events := e)
        outbox;
      {
        states;
        outbox = empty_outbox;
        links = !links;
        completions = !completions;
        events = !events;
      }
    end
    else
      { states; outbox; links = []; completions = !completions; events = 0 }
  in
  (* Deliver the head of link [key]; returns the post-receive pieces
     with the sends not yet placed (the two modes place them
     differently). *)
  let deliver cfg ((src, dst) as key) q =
    match q with
    | [] -> None
    | msg :: rest ->
        let links = link_set cfg.links key rest in
        let events = cfg.events + 1 in
        let s, actions =
          protocol.Engine.on_receive ~round:events ~node:dst ~src msg
            cfg.states.(dst)
        in
        let states = Array.copy cfg.states in
        states.(dst) <- s;
        let completions = ref cfg.completions in
        let sends = ref [] in
        List.iter
          (fun action ->
            match action with
            | Engine.Send (d, m) ->
                check_send ~node:dst d;
                sends := (d, m) :: !sends
            | Engine.Complete value ->
                completions :=
                  { Engine.node = dst; round = events; value } :: !completions)
          actions;
        Some (states, links, List.rev !sends, !completions, events)
  in
  let successors cfg =
    if reduce then
      (* Drained mode: one successor per non-empty link (deliver its
         head, then drain the sends it produced). Transmit branching
         is gone — see the persistent-set argument in the .mli. *)
      List.filter_map
        (fun ((_, dst) as key, q) ->
          match deliver cfg key q with
          | None -> None
          | Some (states, links, sends, completions, events) ->
              let links, events = drain ~src:dst ~links ~events sends in
              Some { states; outbox = empty_outbox; links; completions; events })
        cfg.links
    else begin
      let succs = ref [] in
      (* (a) transmit an outbox head onto its link. *)
      for v = 0 to n - 1 do
        match cfg.outbox.(v) with
        | [] -> ()
        | (dst, msg) :: rest ->
            let outbox = Array.copy cfg.outbox in
            outbox.(v) <- rest;
            let key = (v, dst) in
            let links =
              link_set cfg.links key (link_get cfg.links key @ [ msg ])
            in
            succs :=
              { cfg with outbox; links; events = cfg.events + 1 } :: !succs
      done;
      (* (b) deliver a link head. *)
      List.iter
        (fun ((_, dst) as key, q) ->
          match deliver cfg key q with
          | None -> ()
          | Some (states, links, sends, completions, events) ->
              let outbox = Array.copy cfg.outbox in
              outbox.(dst) <- outbox.(dst) @ sends;
              succs := { states; outbox; links; completions; events } :: !succs)
        cfg.links;
      List.rev !succs
    end
  in
  (* A worker's pure verdict on one frontier configuration: successors
     (digests precomputed off the merge path) or, when quiescent, the
     safety check tagged with the canonical key so the lowest failing
     configuration wins deterministically. *)
  let expand cfg =
    match successors cfg with
    | [] -> `Terminal (canonical_key cfg, check (List.rev cfg.completions))
    | succs ->
        `Succs (List.map (fun c -> (Digest.string (canonical_key c), c)) succs)
  in
  let map_f f xs =
    match pool with
    | None -> List.map f xs
    | Some p -> Parallel.pool_map p f xs
  in
  let visited = Hashtbl.create 4096 in
  let explored = ref 0
  and terminal = ref 0
  and max_frontier = ref 0
  and dedup_hits = ref 0 in
  let stats () =
    {
      explored = !explored;
      terminal = !terminal;
      max_frontier = !max_frontier;
      dedup_hits = !dedup_hits;
    }
  in
  Hashtbl.replace visited (Digest.string (canonical_key initial)) ();
  explored := 1;
  (* Breadth-first by layers: workers expand a whole layer in
     parallel; dedup, counting and budget enforcement happen here, in
     input order, so the run is bit-identical for every jobs count. *)
  let rec loop frontier =
    match frontier with
    | [] -> Exhaustive (stats ())
    | layer ->
        max_frontier := max !max_frontier (List.length layer);
        let expanded = map_f expand layer in
        let next = ref [] in
        let exhausted = ref false in
        let violation = ref None in
        List.iter
          (fun result ->
            match result with
            | `Terminal (ckey, verdict) -> (
                incr terminal;
                match verdict with
                | Ok () -> ()
                | Error msg -> (
                    match !violation with
                    | Some (best, _) when best <= ckey -> ()
                    | _ -> violation := Some (ckey, msg)))
            | `Succs succs ->
                List.iter
                  (fun (dg, c) ->
                    if Hashtbl.mem visited dg then incr dedup_hits
                    else if not !exhausted then
                      if !explored >= max_configs then exhausted := true
                      else begin
                        Hashtbl.replace visited dg ();
                        incr explored;
                        next := c :: !next
                      end)
                  succs)
          expanded;
        (match !violation with
        | Some (_, msg) -> raise (Violation msg)
        | None -> ());
        if !exhausted then Budget_exhausted (stats ())
        else loop (List.rev !next)
  in
  loop [ initial ]
