(** Composable runtime invariant monitors.

    The test suites mostly validate executions post-hoc
    ([Order.chain], [Counts.validate]); under fault injection that is
    not enough — a protocol can be wrong long before it terminates, or
    never terminate at all. A monitor watches the execution {e as it
    runs} through an {!Engine.observer} and maintains a verdict:

    - {b safety} monitors ([rank_monotonic], [distinct_ranks],
      [unique_completion], [chain_consistent]) flag a violation the
      instant a completion breaks the problem specification;
    - {b liveness} monitors ([progress], [completes]) detect the
      absence of good events: [progress] halts the engine with a
      structured [Stalled] verdict when nothing has been delivered or
      completed for a configurable round budget — instead of the
      engine's generic {!Engine.Round_limit_exceeded} blow-up — and
      [completes] fails at the end of the run if completions are
      missing.

    Monitors are generic in the completion value ['r]; extractors
    ([rank], [op], [pred]) adapt them to a concrete protocol. A
    monitor holds hidden mutable state: create fresh monitors for
    every run. *)

type kind = Safety | Liveness

type status =
  | Pass
  | Violated of string  (** a safety property broke; the message says how. *)
  | Stalled of { round : int; last_progress : int; detail : string option }
      (** liveness verdict: no progress since [last_progress] when the
          budget ran out at [round]. [detail], when present, names the
          cause a diagnosis hook identified at the stall — e.g. the
          network partition that walled off the token holder. *)

type outcome = { name : string; kind : kind; status : status }

type report = outcome list

type 'r t
(** One named monitor over completions of type ['r]. *)

val name : 'r t -> string
val kind : 'r t -> kind

(** {1 Safety monitors} *)

val rank_monotonic : rank:('r -> int) -> 'r t
(** ["safety-rank-monotonicity"]: at every node, successive completed
    ranks must strictly increase (the long-lived counter rule; trivial
    for one-shot runs where each node completes once). *)

val distinct_ranks : rank:('r -> int) -> 'r t
(** ["safety-distinct-ranks"]: no rank value may be handed out twice
    across the whole system — the heart of the counting
    specification. *)

val unique_completion : node_of:(node:int -> 'r -> int) -> 'r t
(** ["safety-unique-completion"]: no logical requester may complete
    twice in a one-shot run. [node_of] maps a completion (delivered at
    engine node [node]) to the requester it answers — [fun ~node _ ->
    node] when completions surface at the requester itself. *)

val chain_consistent :
  op:('r -> int * int) -> pred:('r -> (int * int) option) -> 'r t
(** ["safety-chain-consistency"]: the online fragment of the total
    order check for queuing — no operation completes twice, no two
    operations claim the same predecessor (including the initial
    token, [pred = None]), and no operation is its own predecessor.
    Operations are [(origin, seq)] pairs. The full chain coverage
    check still runs post-hoc via [Order.chain]. *)

(** {1 Liveness monitors} *)

val progress : ?budget:int -> ?diagnose:(round:int -> string option) -> unit -> 'r t
(** ["liveness-progress"]: if [budget] (default 512) consecutive
    rounds pass with no delivery and no completion while the run is
    still alive, the verdict becomes [Stalled] and the monitor asks
    the engine to halt. Pick a budget larger than the longest
    legitimate silent wait — e.g. a retransmit layer's maximum backoff
    — or the monitor will kill a run that was about to recover.
    [diagnose] is invoked once, at the stall, to attach a cause to the
    verdict (e.g. [Dynamic.describe_cut] of the token holder). *)

val completion_progress :
  ?budget:int -> ?diagnose:(round:int -> string option) -> unit -> 'r t
(** ["liveness-completion-progress"]: like {!progress}, but only
    completions count as progress — the stall detector for gossiping
    protocols whose periodic re-flooding never lets the network go
    silent even when a partition has frozen the logical queue. *)

val completes : expected:int -> 'r t
(** ["liveness-completion"]: at the end of the run, fewer than
    [expected] completions is a violation — the monitor that fires
    when a dropped message silently starves an operation and the
    network simply goes quiet. *)

(** {1 Attaching and reporting} *)

val observe : 'r t list -> 'r Engine.observer
(** Fuse the monitors into one engine observer. The observer requests
    [`Halt] as soon as any monitor does. *)

val finalise : 'r t list -> report
(** End-of-run verdicts, in the order given. Run this after the engine
    returns; it triggers the end-of-run checks ([completes]). *)

val all_pass : report -> bool
val safety_ok : report -> bool
val liveness_ok : report -> bool
val stalled : report -> bool
(** Whether any monitor reported [Stalled]. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit
