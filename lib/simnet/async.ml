(* Discrete-event asynchronous engine. See async.mli. *)

module Graph = Countq_topology.Graph
module Heap = Countq_util.Heap
module Rng = Countq_util.Rng

type delay_model =
  | Constant of int
  | Uniform of { min : int; max : int; seed : int64 }
  | Per_message of (src:int -> dst:int -> send_time:int -> int)

type 'r result = {
  completions : 'r Engine.completion list;
  finish_time : int;
  messages : int;
}

type ('m, 'r) event =
  | Arrival of { src : int; dst : int; msg : 'm }
  | Wakeup of int

let make_delay_fn = function
  | Constant d ->
      if d < 1 then invalid_arg "Async.run: constant delay must be >= 1";
      fun ~src:_ ~dst:_ ~send_time:_ -> d
  | Uniform { min; max; seed } ->
      if min < 1 || max < min then invalid_arg "Async.run: bad uniform delays";
      let rng = Rng.create seed in
      fun ~src:_ ~dst:_ ~send_time:_ -> min + Rng.below rng (max - min + 1)
  | Per_message f ->
      fun ~src ~dst ~send_time -> Stdlib.max 1 (f ~src ~dst ~send_time)

let run ~graph ~delay ?(wakeups = []) ?(max_events = 10_000_000) ?faults
    ?metrics ~protocol () =
  let n = Graph.n graph in
  let delay_fn = make_delay_fn delay in
  let states = Array.init n protocol.Engine.initial_state in
  let heap : (int, ('m, 'r) event) Heap.t = Heap.create () in
  (* Serialisation clocks: a node processes (receives or wakes) at most
     one event per time unit and emits at most one message per unit;
     links remain FIFO. *)
  let proc_free = Array.make n (-1) in
  let send_free = Array.make n (-1) in
  (* Keyed by the flattened link id [src * n + dst]: an int key hashes
     without allocating the (src, dst) tuple the old scheme boxed for
     every scheduled message. *)
  let link_last : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let completions = ref [] in
  let messages = ref 0 in
  let finish = ref 0 in
  let events = ref 0 in
  let crashed v time =
    match faults with
    | None -> false
    | Some fr -> Faults.crashed fr ~node:v ~round:time
  in
  (* Schedule one copy of a message on the (FIFO) link, [extra] time
     units after its fault-free arrival instant. *)
  let schedule src dst msg ~send_time ~extra =
    let raw_arrival = send_time + delay_fn ~src ~dst ~send_time + extra in
    let key = (src * n) + dst in
    let arrival =
      match Hashtbl.find_opt link_last key with
      | Some last -> max raw_arrival (last + 1)
      | None -> raw_arrival
    in
    Hashtbl.replace link_last key arrival;
    Heap.push heap arrival (Arrival { src; dst; msg })
  in
  let emit src now actions =
    List.iter
      (fun action ->
        match action with
        | Engine.Complete value ->
            completions := { Engine.node = src; round = now; value } :: !completions;
            finish := max !finish now
        | Engine.Send (dst, msg) ->
            if not (Graph.has_edge graph src dst) then
              raise (Engine.Not_a_neighbor { node = src; dst });
            let s = max now (send_free.(src) + 1) in
            send_free.(src) <- s;
            (match metrics with
            | Some m -> Metrics.note_transmit m ~src ~dst ~round:s
            | None -> ());
            let decision =
              match faults with
              | None -> Faults.Deliver
              | Some fr -> Faults.decide fr ~src ~dst ~round:s
            in
            (match decision with
            | Faults.Deliver -> schedule src dst msg ~send_time:s ~extra:0
            | Faults.Drop -> (
                match metrics with
                | Some m -> Metrics.note_drop m ~src ~dst
                | None -> ())
            | Faults.Duplicate ->
                (match metrics with
                | Some m -> Metrics.note_duplicate m ~src ~dst
                | None -> ());
                schedule src dst msg ~send_time:s ~extra:0;
                schedule src dst msg ~send_time:s ~extra:0
            | Faults.Delay d ->
                (match metrics with
                | Some m -> Metrics.note_delay m ~src ~dst
                | None -> ());
                schedule src dst msg ~send_time:s ~extra:d))
      actions
  in
  List.iter
    (fun (t, v) ->
      if t < 0 || v < 0 || v >= n then invalid_arg "Async.run: bad wakeup";
      Heap.push heap t (Wakeup v))
    wakeups;
  (* Time 0: one-shot issue. *)
  for v = 0 to n - 1 do
    let s, actions = protocol.Engine.on_start ~node:v states.(v) in
    states.(v) <- s;
    emit v 0 actions
  done;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (t, ev) ->
        incr events;
        if !events > max_events then begin
          (* The event just popped is still unprocessed: count it, and
             charge every undelivered message to its destination for
             the busiest-nodes summary. *)
          let outstanding = Heap.size heap + 1 in
          let loads = Array.make n 0 in
          let note = function
            | Arrival { dst; _ } -> loads.(dst) <- loads.(dst) + 1
            | Wakeup _ -> ()
          in
          note ev;
          let rec drain () =
            match Heap.pop heap with
            | Some (_, e) ->
                note e;
                drain ()
            | None -> ()
          in
          drain ();
          raise
            (Engine.Round_limit_exceeded
               {
                 limit = max_events;
                 outstanding;
                 queued = 0;
                 held = 0;
                 busiest = Engine.top_loaded loads;
               })
        end;
        (match ev with
        | Arrival { src; dst; msg } ->
            if crashed dst t then begin
              Faults.note_crash_drop (Option.get faults);
              match metrics with
              | Some m -> Metrics.note_crash_drop m ~dst
              | None -> ()
            end
            else begin
              let now = max t (proc_free.(dst) + 1) in
              proc_free.(dst) <- now;
              incr messages;
              finish := max !finish now;
              (match metrics with
              | Some m -> Metrics.note_deliver m ~src ~dst ~round:now
              | None -> ());
              let s, actions =
                protocol.Engine.on_receive ~round:now ~node:dst ~src msg
                  states.(dst)
              in
              states.(dst) <- s;
              emit dst now actions
            end
        | Wakeup v -> (
            if not (crashed v t) then
              match protocol.Engine.on_tick with
              | None -> ()
              | Some tick ->
                  let now = max t (proc_free.(v) + 1) in
                  proc_free.(v) <- now;
                  finish := max !finish now;
                  let s, actions = tick ~round:now ~node:v states.(v) in
                  states.(v) <- s;
                  emit v now actions));
        loop ()
  in
  loop ();
  let completions =
    List.sort
      (fun (a : _ Engine.completion) (b : _ Engine.completion) ->
        match compare a.round b.round with 0 -> compare a.node b.node | c -> c)
      !completions
  in
  { completions; finish_time = !finish; messages = !messages }
