(* Hop-by-hop ack / retransmit / dedup layer. See reliable.mli. *)

type 'm msg = Data of { seq : int; payload : 'm } | Ack of { seq : int }

type 'm pending = {
  p_dst : int;
  payload : 'm;
  mutable retries : int;
  mutable due : int;  (** round at which the next retransmit fires. *)
}

type ('s, 'm) state = {
  mutable inner : 's;
  next_seq : (int, int) Hashtbl.t;  (** dst -> next seq to assign. *)
  unacked : (int * int, 'm pending) Hashtbl.t;  (** (dst, seq). *)
  next_expected : (int, int) Hashtbl.t;  (** src -> next seq to release. *)
  buffer : (int * int, 'm) Hashtbl.t;  (** out-of-order payloads. *)
}

type stats = {
  data_sent : int;
  retransmits : int;
  acks_sent : int;
  duplicates_ignored : int;
  gave_up : int;
}

type handle = {
  outstanding : int ref;
  r_data_sent : int ref;
  r_retransmits : int ref;
  r_acks_sent : int ref;
  r_duplicates_ignored : int ref;
  r_gave_up : int ref;
}

let keep_alive h () = !(h.outstanding) > 0

let stats h =
  {
    data_sent = !(h.r_data_sent);
    retransmits = !(h.r_retransmits);
    acks_sent = !(h.r_acks_sent);
    duplicates_ignored = !(h.r_duplicates_ignored);
    gave_up = !(h.r_gave_up);
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d payloads, %d retransmits, %d acks, %d duplicates ignored, %d abandoned"
    s.data_sent s.retransmits s.acks_sent s.duplicates_ignored s.gave_up

let wrap ?(ack_timeout = 8) ?(max_retries = 5) ?metrics ?telemetry
    (p : _ Engine.protocol) =
  if ack_timeout < 1 then invalid_arg "Reliable.wrap: ack_timeout must be >= 1";
  if max_retries < 0 then invalid_arg "Reliable.wrap: max_retries must be >= 0";
  let h =
    {
      outstanding = ref 0;
      r_data_sent = ref 0;
      r_retransmits = ref 0;
      r_acks_sent = ref 0;
      r_duplicates_ignored = ref 0;
      r_gave_up = ref 0;
    }
  in
  let send_data st ~round dst payload =
    let seq = Option.value (Hashtbl.find_opt st.next_seq dst) ~default:0 in
    Hashtbl.replace st.next_seq dst (seq + 1);
    Hashtbl.replace st.unacked (dst, seq)
      { p_dst = dst; payload; retries = 0; due = round + ack_timeout };
    incr h.outstanding;
    incr h.r_data_sent;
    Engine.Send (dst, Data { seq; payload })
  in
  (* Inner actions become numbered, tracked transmissions. *)
  let lift st ~round actions =
    List.map
      (fun action ->
        match action with
        | Engine.Send (dst, m) -> send_data st ~round dst m
        | Engine.Complete r -> Engine.Complete r)
      actions
  in
  let initial_state v =
    {
      inner = p.Engine.initial_state v;
      next_seq = Hashtbl.create 4;
      unacked = Hashtbl.create 8;
      next_expected = Hashtbl.create 4;
      buffer = Hashtbl.create 8;
    }
  in
  let on_start ~node st =
    let inner, actions = p.Engine.on_start ~node st.inner in
    st.inner <- inner;
    (st, lift st ~round:0 actions)
  in
  (* Release every buffered payload that is next in sequence from
     [src], feeding each to the inner protocol in order. *)
  let release st ~round ~node ~src =
    let actions = ref [] in
    let continue = ref true in
    while !continue do
      let expected =
        Option.value (Hashtbl.find_opt st.next_expected src) ~default:0
      in
      match Hashtbl.find_opt st.buffer (src, expected) with
      | None -> continue := false
      | Some payload ->
          Hashtbl.remove st.buffer (src, expected);
          Hashtbl.replace st.next_expected src (expected + 1);
          let inner, acts = p.Engine.on_receive ~round ~node ~src payload st.inner in
          st.inner <- inner;
          actions := !actions @ lift st ~round acts
    done;
    !actions
  in
  let on_receive ~round ~node ~src msg st =
    match msg with
    | Ack { seq } ->
        (match Hashtbl.find_opt st.unacked (src, seq) with
        | Some _ ->
            Hashtbl.remove st.unacked (src, seq);
            decr h.outstanding
        | None -> ());
        (st, [])
    | Data { seq; payload } ->
        incr h.r_acks_sent;
        let ack = Engine.Send (src, Ack { seq }) in
        let expected =
          Option.value (Hashtbl.find_opt st.next_expected src) ~default:0
        in
        if seq < expected || Hashtbl.mem st.buffer (src, seq) then begin
          incr h.r_duplicates_ignored;
          (st, [ ack ])
        end
        else begin
          Hashtbl.replace st.buffer (src, seq) payload;
          (st, ack :: release st ~round ~node ~src)
        end
  in
  let on_tick ~round ~node st =
    (* Fire the retransmit timers due this round, oldest link first so
       the scan order is independent of hash-table internals. *)
    let due =
      Hashtbl.fold
        (fun key pending acc -> if pending.due <= round then (key, pending) :: acc else acc)
        st.unacked []
      |> List.sort compare
    in
    let resends =
      List.filter_map
        (fun ((_, seq), pending) ->
          if pending.retries >= max_retries then begin
            Hashtbl.remove st.unacked (pending.p_dst, seq);
            decr h.outstanding;
            incr h.r_gave_up;
            None
          end
          else begin
            pending.retries <- pending.retries + 1;
            pending.due <- round + (ack_timeout * (1 lsl pending.retries));
            incr h.r_retransmits;
            (match metrics with
            | Some m -> Metrics.note_retransmit m ~node
            | None -> ());
            (match telemetry with
            | Some tl -> Telemetry.note_retransmit tl ~round
            | None -> ());
            Some (Engine.Send (pending.p_dst, Data { seq; payload = pending.payload }))
          end)
        due
    in
    let st, inner_actions =
      match p.Engine.on_tick with
      | None -> (st, [])
      | Some tick ->
          let inner, acts = tick ~round ~node st.inner in
          st.inner <- inner;
          (st, lift st ~round acts)
    in
    (st, resends @ inner_actions)
  in
  let protocol =
    {
      Engine.name = p.Engine.name ^ "+retry";
      initial_state;
      on_start;
      on_receive;
      on_tick = Some on_tick;
    }
  in
  (protocol, h)
