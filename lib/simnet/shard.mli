(** Domain-sharded execution of one synchronous run.

    Every prior engine made a single core faster; this module makes a
    single {e run} use several. The node set is split by a
    {!Countq_topology.Partition} (contiguous ranges for implicit
    families, greedy edge-cut for materialised graphs); each shard runs
    the round's phases on its own domain; cross-shard messages are
    buffered during the send phase and merged at a per-round barrier in
    a deterministic order (sorted by [(src, dst, seq)]) before any
    shard starts receiving.

    {b Determinism argument.} The synchronous model makes this exact,
    not approximate: within a phase, nodes interact only through
    per-link FIFO queues keyed by [(src, dst)], and a message's queue
    position depends only on its sender's outbox order — so any
    cross-shard apply order that preserves per-link FIFO yields the
    same queue contents, the same arbiter decisions and the same
    protocol states as the sequential engine. Aggregates (message
    counts, backlog peaks, metrics tallies, telemetry windows) are sums
    and maxima of per-event contributions, so per-shard recorders
    merged deterministically ({!Metrics.merge_into},
    {!Telemetry.merge_into}) reproduce the sequential recorders
    exactly. Completions are tagged with their phase and merged in
    [(round, phase, node)] order, which is precisely the sequential
    engine's chronological push order. The result is {e bit-identical}
    to {!Engine.run} / {!Event_engine.run} for every shard count —
    qcheck-pinned in [test_shard.ml], including with [?metrics],
    [?faults], [?dynamic] and [?telemetry] attached.

    When a fault plan or dynamic schedule is attached, the send phase
    runs sequentially on the coordinator (the fault decision stream is
    a single mutable sequence whose global transmission order is
    observable), while the receive/tick/injection phases — where the
    protocol work happens — stay parallel; crash/churn guards for those
    phases are precomputed by the coordinator each round, so schedule
    queries never race.

    {!run_implicit} supports [?observer] without serialising the
    phases: each shard buffers its deliver/complete events in local
    processing order, and the coordinator replays them at the round
    barrier, merged in [(phase, node)] order — the same reconstruction
    the completion drain uses — so the callback stream (including the
    interleaving of [on_deliver] and [on_complete] at a node) is
    exactly the sequential engines'. [on_round_end] fires on the
    coordinator after the merge, with the engines' [in_flight]
    accounting, and its [`Halt] verdict stops the run. As in
    {!Event_engine.run}, a non-default observer disables quiescent-gap
    jumping (it must see every executed round). [?keep_alive] remains
    unsupported here — use an observer that returns [`Continue].

    With an effective shard count of 1 the call delegates to the
    sequential engine, so nothing is ever lost by threading [--shards]
    through unconditionally. *)

val auto_shards : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — a sensible
    default shard count. *)

val run :
  ?shards:int ->
  ?pool:Countq_util.Parallel.pool ->
  ?partition:Countq_topology.Partition.t ->
  ?faults:Faults.runtime ->
  ?dynamic:Dynamic.runtime ->
  ?metrics:Metrics.t ->
  ?telemetry:Telemetry.t ->
  graph:Countq_topology.Graph.t ->
  config:Engine.config ->
  protocol:('s, 'm, 'r) Engine.protocol ->
  unit ->
  'r Engine.result
(** Sharded {!Engine.run} on a materialised graph. [shards] defaults to
    {!auto_shards}; [partition] defaults to
    [Partition.greedy ~graph ~shards] (pass one to control placement —
    any partition of the right size is bit-identical). Worker domains
    come from [pool]'s remaining lane budget when given (reserved for
    the whole run, released at the end), else up to
    [Domain.recommended_domain_count () - 1] are spawned directly;
    with no budget the run degrades to the sharded data path on the
    calling domain alone. [shards = 1] delegates to {!Engine.run}.

    Tick-driven protocols are supported (each shard ticks its own
    nodes). A [Custom] arbiter must be a pure function: it is called
    concurrently from several domains.
    @raise Invalid_argument if [shards < 1] or the partition does not
    cover the graph's nodes. *)

val run_implicit :
  ?shards:int ->
  ?pool:Countq_util.Parallel.pool ->
  ?partition:Countq_topology.Partition.t ->
  ?faults:Faults.runtime ->
  ?dynamic:Dynamic.runtime ->
  ?observer:'r Engine.observer ->
  ?metrics:Metrics.t ->
  ?telemetry:Telemetry.t ->
  ?sink:('r Engine.completion -> unit) ->
  ?injections:('s, 'm, 'r) Event_engine.injection array ->
  ?halt_after:int ->
  ?stats:Event_engine.stats ->
  ?starters:int list ->
  topo:Countq_topology.Implicit.t ->
  config:Engine.config ->
  protocol:('s, 'm, 'r) Engine.protocol ->
  unit ->
  'r Engine.result
(** Sharded {!Event_engine.run} on an implicit topology, with the same
    optional machinery (completion [sink] — invoked in chronological
    order, drained at each round barrier; per-event [observer],
    replayed at the barrier in the sequential callback order — see the
    module preamble; scheduled [injections]; [halt_after]; [stats];
    [starters]). [partition] defaults to [Partition.contiguous].
    [shards = 1] delegates to {!Event_engine.run}.

    Representation note: node state is dense (arrays over all [n]
    nodes), not the event engine's lazy sparse store — the per-round
    {e work} still tracks the active set, but setup is O(n). [stats]
    fields ([touched], [peak_in_flight], [executed_rounds]) are
    maintained with the event engine's exact semantics and are
    bit-identical to a sequential run.
    @raise Invalid_argument as {!run}, or if the protocol has a tick
    handler (as {!Event_engine.run}), or on malformed
    [injections]/[starters]. *)
