(** Synchronous message-passing simulator implementing the paper's
    model of computation (Section 2.1).

    The distributed system is a connected undirected graph whose links
    are reliable FIFO channels of delay one. In each round, every
    processor may (in this order): send at most [send_capacity]
    message(s) to neighbours, receive at most [receive_capacity]
    message(s), and compute locally. The default capacities are 1/1 —
    the paper's base model. Capacities [> 1] model the "expanded time
    step" of Section 4 that lets a tree protocol absorb up to
    degree-many concurrent messages; the paper notes a step of capacity
    [c] is simulable by [c] base steps, so reported delays can be scaled
    by {!field-expansion} to translate back.

    Rounds are numbered from 1. A message handed to the engine during
    round [t] (or at start) is transmitted in the send phase of some
    round [t' > t] (first-come-first-served per sender) and received in
    the receive phase of round [t']; each hop therefore costs exactly
    one time unit, so information travels distance [d] in [d] rounds —
    the latency semantics used by Theorem 3.6.

    When several neighbours have messages pending for the same node,
    an {!arbiter} admits [receive_capacity] of them per round and the
    rest wait on their FIFO links: this queueing is the network
    contention that makes the star graph cost Θ(n²) (Section 5).

    {b Performance model.} The engine is organised around {e active
    sets}: a round costs O(number of nodes that send, receive or tick)
    plus O(messages moved), not O(n) — see DESIGN.md §4 for the full
    cost model. Runs with no tick handler, the {!null_observer} and the
    default [keep_alive] additionally {e fast-forward} across idle
    rounds (quiescent network, or everything parked by a fault delay)
    in O(1), so a protocol that is busy for R of its [min_rounds]
    horizon costs O(R), not O(horizon). Semantics are unaffected:
    {!Reference.run} keeps the dense O(n)-per-round engine and qcheck
    properties pin the two to bit-identical results. *)

type arbiter =
  | Round_robin
      (** Cycle fairly over incoming links (deterministic default). *)
  | Lowest_sender_first
      (** Always prefer the smallest sender id (starves high ids;
          useful as an adversarial schedule in tests). *)
  | Custom of (round:int -> node:int -> candidates:int list -> int)
      (** [candidates] is the non-empty list of sender ids with a
          deliverable message, in increasing order; return the chosen
          sender (must be a member). *)

type config = {
  receive_capacity : int;  (** messages processed per node per round. *)
  send_capacity : int;  (** messages emitted per node per round. *)
  arbiter : arbiter;
  max_rounds : int;  (** safety cut-off; exceeded runs raise. *)
  min_rounds : int;
      (** Run at least this many rounds even if the network is quiescent
          — needed by protocols whose [on_tick] injects work at later
          rounds (the long-lived scenario of Kuhn–Wattenhofer). *)
}

val default_config : config
(** Capacities 1/1, round-robin arbitration, [max_rounds = 10_000_000],
    [min_rounds = 0]. *)

val config_with_capacity : int -> config
(** [config_with_capacity c] is {!default_config} with both capacities
    set to [c] (an expanded step of width [c]). *)

type ('m, 'r) action =
  | Send of int * 'm
      (** [Send (dst, msg)]: enqueue [msg] for neighbour [dst]. The
          engine checks adjacency and raises on non-neighbours. *)
  | Complete of 'r
      (** Record an operation completion at this node, this round. *)

type ('s, 'm, 'r) protocol = {
  name : string;
  initial_state : int -> 's;  (** per-node state before round 1. *)
  on_start : node:int -> 's -> 's * ('m, 'r) action list;
      (** Invoked once per node at time 0 (the instant the one-shot
          requests are issued). Completions here have delay 0. *)
  on_receive :
    round:int -> node:int -> src:int -> 'm -> 's -> 's * ('m, 'r) action list;
      (** Invoked for each delivered message. Multiple messages admitted
          to a node in one round are processed sequentially, each seeing
          the state left by the previous one (the paper's sequential
          processing within an expanded step). *)
  on_tick : (round:int -> node:int -> 's -> 's * ('m, 'r) action list) option;
      (** If set, invoked for every node at the end of every round [t];
          sends it produces are transmitted in round [t + 1], i.e. the
          tick models an operation issued at time [t]. Use [None] for
          one-shot protocols. *)
}

val no_tick : (round:int -> node:int -> 's -> 's * ('m, 'r) action list) option
(** [None], for readability at protocol definition sites. *)

type 'r completion = { node : int; round : int; value : 'r }

type 'r result = {
  completions : 'r completion list;  (** in chronological, then node, order. *)
  rounds : int;  (** number of the last round with any activity. *)
  messages : int;  (** total messages delivered. *)
  max_link_backlog : int;  (** peak FIFO queue length: contention proxy. *)
  expansion : int;  (** the [receive_capacity] the run used. *)
}

exception Not_a_neighbor of { node : int; dst : int }
(** Raised when a protocol tries to send to a non-adjacent node. *)

exception
  Round_limit_exceeded of {
    limit : int;  (** the [max_rounds] (or async [max_events]) bound. *)
    outstanding : int;  (** messages queued in sender outboxes. *)
    queued : int;  (** messages waiting on receiver FIFO links. *)
    held : int;  (** messages parked by a fault-injected delay. *)
    busiest : (int * int) list;
        (** the top (at most) five [(node, load)] pairs, heaviest
            first (ties to the lower id), where a node's load counts
            its queued incoming messages, its unsent outbox and any
            fault-delayed messages addressed to it — i.e. {e where}
            the pending traffic sits, not just how much there is. *)
  }
(** Raised when [max_rounds] elapses with messages still in flight. The
    payload summarises where the pending messages sit, so a genuine
    engine blow-up is distinguishable from a protocol that merely
    stalled (the latter is better detected — and reported as a
    structured verdict — by a [Monitor.progress] liveness monitor). *)

val top_loaded : ?k:int -> int array -> (int * int) list
(** [top_loaded loads] summarises a per-node load array into the
    [busiest] payload shape: the top [k] (default 5) [(node, load)]
    pairs with positive load, heaviest first, ties to the lower id.
    Exposed for the engines and monitors that build the payload. *)

val top_loaded_pairs : ?k:int -> (int * int) list -> (int * int) list
(** As {!top_loaded} for callers that track loads sparsely as
    [(node, load)] pairs rather than a dense per-node array — the
    event-driven engine, which never materialises idle nodes, builds
    its [busiest] payload through this shared helper. Pairs must be
    unique per node. *)

type 'r observer = {
  on_deliver : round:int -> src:int -> dst:int -> unit;
      (** called for every message handed to a protocol. *)
  on_complete : round:int -> node:int -> value:'r -> unit;
      (** called for every [Complete] action, including round 0. *)
  on_round_end : round:int -> in_flight:int -> [ `Continue | `Halt ];
      (** called once at the end of every round with the number of
          messages still in flight; returning [`Halt] stops the run
          gracefully (the result reflects progress so far). *)
}
(** Execution hooks, invoked synchronously during the run — the
    attachment point for {!Monitor} invariant checking. Observers must
    not mutate protocol state; they cannot affect the execution except
    through the [`Halt] directive. *)

val null_observer : 'r observer
(** Hooks that do nothing and always continue. Passing this exact
    value (the default) tells the engine no execution hook can fire,
    which is one of the conditions for idle-round fast-forwarding; a
    hand-rolled do-nothing observer is honoured but disables the
    optimisation. *)

val no_keep_alive : unit -> bool
(** The default [keep_alive]: always [false]. As with
    {!null_observer}, the engine recognises this exact function (by
    physical equality) when deciding whether idle rounds may be
    fast-forwarded. *)

val run :
  ?faults:Faults.runtime ->
  ?dynamic:Dynamic.runtime ->
  ?observer:'r observer ->
  ?keep_alive:(unit -> bool) ->
  ?metrics:Metrics.t ->
  ?telemetry:Telemetry.t ->
  graph:Countq_topology.Graph.t ->
  config:config ->
  protocol:('s, 'm, 'r) protocol ->
  unit ->
  'r result
(** Execute the protocol to quiescence (no queued, in-flight or
    fault-delayed messages). Deterministic: same inputs (including the
    fault plan's seed), same result; with no [faults] (or a started
    {!Faults.none}) the execution is identical to the fault-free
    engine's.

    [faults] injects per-transmission drop/duplicate/delay decisions
    and node crashes (see {!Faults}); query the runtime afterwards for
    the injection tally. [keep_alive] is polled once per round: while
    it returns [true] the engine keeps running rounds (ticking
    protocols) even when the network is quiescent — the hook a
    timeout-and-retransmit layer ({!Reliable}) uses to wait out its
    retry timers. [max_rounds] still bounds the run.

    [dynamic] attaches a started {!Dynamic} topology schedule: in each
    round only the schedule's up nodes send, receive and tick (down
    nodes keep their state, outbox and queued messages — crash with
    rejoin), and a transmission over a down link is dropped at the
    sender's end without consuming the fault plan's decision stream.
    The identity schedule is bit-identical to passing no [dynamic] at
    all, including the metrics recording and the fault plan's
    transmission indices (pinned by qcheck in [test/test_dynamic.ml]).

    [metrics] attaches a per-node / per-edge counter recorder (see
    {!Metrics}). The recorder is passive: the run's result, observer
    stream and fault tallies are bit-identical with or without it
    (pinned by a qcheck property), and — unlike a custom observer or
    keep_alive — it does {e not} disable idle-round fast-forwarding,
    because an idle round records nothing. Absent (the default), the
    hot paths pay a single predictable branch per message.

    [telemetry] attaches a windowed time-series recorder (see
    {!Telemetry}): sends, deliveries, completions, drops, peak backlog
    and peak in-flight are folded into fixed-width round windows.
    Passive exactly like [metrics] — bit-identical runs (same qcheck
    pin), fast-forward stays enabled, jumped-over windows stay zero. *)

val total_delay : 'r result -> int
(** Sum of completion rounds — the paper's concurrent delay complexity
    contribution of this run (Eq. (1)/(3)). *)

val max_delay : 'r result -> int
(** Largest completion round (the alternative metric discussed in
    Section 2.2). *)

val completion_count : 'r result -> int
(** Number of completions recorded. *)
