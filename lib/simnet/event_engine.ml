(* Event-driven engine over implicit topologies. See event_engine.mli.

   The execution semantics are Engine.run's, verbatim: the same sorted
   active-set send/receive phases, the same arbiter, fault-decision and
   observer orderings, the same completion assembly — test_event_engine
   pins the two bit-identical on every materialisable topology. What
   differs is representation: node state lives in a touch-ordered
   compact store behind a sparse slot map, adjacency is read from an
   Implicit.t one materialised node at a time, scheduled injections
   replace the O(n)-per-round tick scan, and the quiescent-gap jump
   generalises Engine's held-due wake to the injection calendar. A
   node's ring buffers are handed back to the GC the moment it goes
   fully quiescent, so the live footprint tracks the wavefront of the
   computation, not the graph. *)

module Itopo = Countq_topology.Implicit
module Heap = Countq_util.Heap
module Vec = Countq_util.Vec

type ('s, 'm, 'r) injection = {
  at : int;
  node : int;
  inject : 's -> 's * ('m, 'r) Engine.action list;
}

type stats = {
  mutable touched : int;
  mutable peak_in_flight : int;
  mutable executed_rounds : int;
}

let fresh_stats () = { touched = 0; peak_in_flight = 0; executed_rounds = 0 }

(* Growable parallel stores, one cell per materialised node (the slot).
   Grow-on-push seeds fresh cells from the pushed element, so no dummy
   values are ever needed for the polymorphic payloads. *)
type 'a tbl = { mutable data : 'a array; mutable len : int }

let tbl () = { data = [||]; len = 0 }

let tbl_push t x =
  if t.len = Array.length t.data then begin
    let d = Array.make (max 16 (2 * t.len)) x in
    Array.blit t.data 0 d 0 t.len;
    t.data <- d
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

(* Index of [u] in a sorted duplicate-free neighbour array, or -1. *)
let nbr_slot nbrs u =
  let lo = ref 0 and hi = ref (Array.length nbrs - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let x = Array.unsafe_get nbrs mid in
    if x = u then res := mid else if x < u then lo := mid + 1 else hi := mid - 1
  done;
  !res

(* Above this, the node -> slot map becomes a hash table instead of a
   dense int array (8 bytes/node is the one O(n) cost we accept: it is
   what makes every other lookup branch-free). *)
let dense_slot_limit = 1 lsl 22

let run ?faults ?dynamic ?(observer = Engine.null_observer)
    ?(keep_alive = Engine.no_keep_alive) ?metrics ?telemetry ?sink
    ?(injections = [||]) ?halt_after ?stats ?starters ~topo
    ~(config : Engine.config) ~(protocol : ('s, 'm, 'r) Engine.protocol) () =
  if config.receive_capacity < 1 || config.send_capacity < 1 then
    invalid_arg "Event_engine.run: capacities must be >= 1";
  (match protocol.on_tick with
  | None -> ()
  | Some _ ->
      invalid_arg
        "Event_engine.run: tick-driven protocols are not supported (every \
         node would wake every round); schedule work via ?injections");
  let n = Itopo.n topo in
  let send_cap = config.send_capacity in
  let recv_cap = config.receive_capacity in
  let ninj = Array.length injections in
  for i = 0 to ninj - 1 do
    let inj = injections.(i) in
    if inj.at < 1 then
      invalid_arg "Event_engine.run: injection rounds must be >= 1";
    if inj.node < 0 || inj.node >= n then
      invalid_arg "Event_engine.run: injection node out of range";
    if i > 0 then begin
      let p = injections.(i - 1) in
      if p.at > inj.at || (p.at = inj.at && p.node > inj.node) then
        invalid_arg "Event_engine.run: injections must be sorted by (round, node)"
    end
  done;
  (* Sparse slot map: node id -> touch-ordered slot, -1 when the node
     has never existed. *)
  let get_slot, set_slot =
    if n <= dense_slot_limit then begin
      let map = Array.make n (-1) in
      ((fun v -> Array.unsafe_get map v), fun v s -> Array.unsafe_set map v s)
    end
    else begin
      let map = Hashtbl.create 4096 in
      ( (fun v -> match Hashtbl.find_opt map v with Some s -> s | None -> -1),
        fun v s -> Hashtbl.replace map v s )
    end
  in
  let state : 's tbl = tbl () in
  let node_of = tbl () in
  let nbrs = tbl () in
  let inq_data : 'm array array tbl = tbl () in
  let inq_head = tbl () in
  let inq_len = tbl () in
  let out_dst : int array tbl = tbl () in
  let out_msg : 'm array tbl = tbl () in
  let out_head = tbl () in
  let out_len = tbl () in
  let rr_pointer = tbl () in
  let pending = tbl () in
  let on_send_list = tbl () in
  let on_recv_list = tbl () in
  (* Materialise [v] with its initial state; on_start is the caller's
     business (eager for starters, contract-checked for lazy touches). *)
  let touch_raw v =
    let s = state.len in
    set_slot v s;
    (match stats with Some c -> c.touched <- c.touched + 1 | None -> ());
    let nb = Itopo.neighbors topo v in
    let deg = Array.length nb in
    tbl_push state (protocol.initial_state v);
    tbl_push node_of v;
    tbl_push nbrs nb;
    tbl_push inq_data (Array.make deg [||]);
    tbl_push inq_head (Array.make deg 0);
    tbl_push inq_len (Array.make deg 0);
    tbl_push out_dst [||];
    tbl_push out_msg [||];
    tbl_push out_head 0;
    tbl_push out_len 0;
    tbl_push rr_pointer 0;
    tbl_push pending 0;
    tbl_push on_send_list false;
    tbl_push on_recv_list false;
    s
  in
  (* First touch after time 0: a node that was asleep until now must
     not have had anything to say at time 0. *)
  let touch v =
    let s = get_slot v in
    if s >= 0 then s
    else begin
      let s = touch_raw v in
      let s', actions = protocol.on_start ~node:v state.data.(s) in
      state.data.(s) <- s';
      (match actions with
      | [] -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Event_engine.run: node %d is not in ?starters but its \
                on_start produced actions"
               v));
      s
    end
  in
  let senders = Vec.create () in
  let receivers = Vec.create () in
  let comp_data = ref [||] in
  let comp_len = ref 0 in
  (* With a [sink], completions stream out as they happen and nothing
     is retained — the constant-memory path for long-horizon runs. *)
  let push_completion =
    match sink with
    | Some f -> f
    | None ->
        fun (c : 'r Engine.completion) ->
          if !comp_len = Array.length !comp_data then begin
            let d = Array.make (max 8 (2 * !comp_len)) c in
            Array.blit !comp_data 0 d 0 !comp_len;
            comp_data := d
          end;
          !comp_data.(!comp_len) <- c;
          incr comp_len
  in
  let messages = ref 0 in
  let max_backlog = ref 0 in
  let outstanding_sends = ref 0 in
  let queued_total = ref 0 in
  let held : (int * int, int * int * 'm) Heap.t = Heap.create () in
  let held_count = ref 0 in
  let held_seq = ref 0 in
  let inj_ptr = ref 0 in
  let has_observer = observer != Engine.null_observer in
  let can_fast_forward =
    (not has_observer) && keep_alive == Engine.no_keep_alive
  in
  let halt_cap = match halt_after with Some h -> max 0 h | None -> max_int in
  (* Ring primitives, as in Engine but two-level indexed: incoming
     rings per (slot, neighbour index), one outbox ring per slot. *)
  let in_push s qi msg =
    let heads = inq_head.data.(s) and lens = inq_len.data.(s) in
    let rings = inq_data.data.(s) in
    let len = Array.unsafe_get lens qi in
    let data = Array.unsafe_get rings qi in
    let cap = Array.length data in
    let data =
      if len = cap then begin
        let d = Array.make (if cap = 0 then 2 else 2 * cap) msg in
        let head = Array.unsafe_get heads qi in
        let mask = cap - 1 in
        for i = 0 to len - 1 do
          Array.unsafe_set d i (Array.unsafe_get data ((head + i) land mask))
        done;
        Array.unsafe_set rings qi d;
        Array.unsafe_set heads qi 0;
        d
      end
      else data
    in
    Array.unsafe_set data
      ((Array.unsafe_get heads qi + len) land (Array.length data - 1))
      msg;
    Array.unsafe_set lens qi (len + 1)
  in
  let in_pop s qi =
    let heads = inq_head.data.(s) and lens = inq_len.data.(s) in
    let data = Array.unsafe_get inq_data.data.(s) qi in
    let head = Array.unsafe_get heads qi in
    let x = Array.unsafe_get data head in
    Array.unsafe_set heads qi ((head + 1) land (Array.length data - 1));
    Array.unsafe_set lens qi (Array.unsafe_get lens qi - 1);
    x
  in
  let out_push s dst msg =
    let len = out_len.data.(s) in
    let ddata = out_dst.data.(s) in
    let cap = Array.length ddata in
    if len = cap then begin
      let cap' = if cap = 0 then 2 else 2 * cap in
      let d = Array.make cap' dst in
      let m = Array.make cap' msg in
      let mdata = out_msg.data.(s) in
      let head = out_head.data.(s) in
      let mask = cap - 1 in
      for i = 0 to len - 1 do
        let j = (head + i) land mask in
        Array.unsafe_set d i (Array.unsafe_get ddata j);
        Array.unsafe_set m i (Array.unsafe_get mdata j)
      done;
      out_dst.data.(s) <- d;
      out_msg.data.(s) <- m;
      out_head.data.(s) <- 0
    end;
    let ddata = out_dst.data.(s) in
    let mask = Array.length ddata - 1 in
    let j = (out_head.data.(s) + len) land mask in
    Array.unsafe_set ddata j dst;
    Array.unsafe_set out_msg.data.(s) j msg;
    out_len.data.(s) <- len + 1
  in
  (* Hand a fully quiescent node's buffers back to the GC; the small
     fixed-size cells (state, counters, rr pointer) stay, so arbiter
     behaviour is unaffected if the node wakes again. *)
  let reclaim s =
    let rings = inq_data.data.(s) in
    for qi = 0 to Array.length rings - 1 do
      if Array.length rings.(qi) > 0 then begin
        rings.(qi) <- [||];
        inq_head.data.(s).(qi) <- 0
      end
    done;
    if Array.length out_dst.data.(s) > 0 then begin
      out_dst.data.(s) <- [||];
      out_msg.data.(s) <- [||];
      out_head.data.(s) <- 0
    end
  in
  let rec apply_actions v s round actions =
    match actions with
    | [] -> ()
    | Engine.Send (dst, msg) :: rest ->
        if nbr_slot nbrs.data.(s) dst < 0 then
          raise (Engine.Not_a_neighbor { node = v; dst });
        out_push s dst msg;
        incr outstanding_sends;
        if not on_send_list.data.(s) then begin
          on_send_list.data.(s) <- true;
          Vec.push senders v
        end;
        apply_actions v s round rest
    | Engine.Complete value :: rest ->
        if has_observer then observer.on_complete ~round ~node:v ~value;
        (match telemetry with
        | Some tl -> Telemetry.note_complete tl ~round
        | None -> ());
        push_completion { Engine.node = v; round; value };
        apply_actions v s round rest
  in
  (* Peak in-flight is sampled wherever the count can crest: after the
     time-0 seeding, after each send phase (messages now queued at
     receivers) and at each round end. *)
  let note_peak () =
    match stats with
    | Some c ->
        let in_flight = !outstanding_sends + !queued_total + !held_count in
        if in_flight > c.peak_in_flight then c.peak_in_flight <- in_flight
    | None -> ()
  in
  (* Time 0: starters issue; everyone else stays unmaterialised. *)
  (match starters with
  | None ->
      for v = 0 to n - 1 do
        let s = touch_raw v in
        let s', actions = protocol.on_start ~node:v state.data.(s) in
        state.data.(s) <- s';
        apply_actions v s 0 actions
      done
  | Some l ->
      let last = ref (-1) in
      List.iter
        (fun v ->
          if v < 0 || v >= n then
            invalid_arg "Event_engine.run: starter out of range";
          if v <= !last then
            invalid_arg "Event_engine.run: starters must be strictly ascending";
          last := v;
          let s = touch_raw v in
          let s', actions = protocol.on_start ~node:v state.data.(s) in
          state.data.(s) <- s';
          apply_actions v s 0 actions)
        l);
  note_peak ();
  let pick =
    match config.arbiter with
    | Engine.Lowest_sender_first ->
        fun _t s ->
          let lens = inq_len.data.(s) in
          let k = Array.length lens in
          let rec scan i =
            if i >= k then None
            else if Array.unsafe_get lens i > 0 then Some i
            else scan (i + 1)
          in
          scan 0
    | Engine.Round_robin ->
        fun _t s ->
          let lens = inq_len.data.(s) in
          let k = Array.length lens in
          let rec scan steps =
            if steps >= k then None
            else begin
              let idx = rr_pointer.data.(s) + steps in
              let idx = if idx >= k then idx - k else idx in
              if Array.unsafe_get lens idx > 0 then begin
                rr_pointer.data.(s) <- (if idx + 1 >= k then 0 else idx + 1);
                Some idx
              end
              else scan (steps + 1)
            end
          in
          scan 0
    | Engine.Custom f ->
        fun t s ->
          let lens = inq_len.data.(s) in
          let nb = nbrs.data.(s) in
          let k = Array.length lens in
          let candidates = ref [] in
          for i = k - 1 downto 0 do
            if Array.unsafe_get lens i > 0 then candidates := nb.(i) :: !candidates
          done;
          if !candidates = [] then None
          else begin
            let src =
              f ~round:t ~node:node_of.data.(s) ~candidates:!candidates
            in
            if not (List.mem src !candidates) then
              invalid_arg "Event_engine.run: arbiter chose a non-candidate";
            Some (nbr_slot nb src)
          end
  in
  let enqueue record_tx t src dst msg =
    let ds = touch dst in
    let qi = nbr_slot nbrs.data.(ds) src in
    in_push ds qi msg;
    pending.data.(ds) <- pending.data.(ds) + 1;
    if not on_recv_list.data.(ds) then begin
      on_recv_list.data.(ds) <- true;
      Vec.push receivers dst
    end;
    incr queued_total;
    let backlog = inq_len.data.(ds).(qi) in
    if backlog > !max_backlog then max_backlog := backlog;
    (match metrics with
    | Some m ->
        if record_tx then Metrics.note_transmit m ~src ~dst ~round:t;
        Metrics.note_backlog m ~node:dst ~backlog
    | None -> ());
    match telemetry with
    | Some tl ->
        if record_tx then Telemetry.note_send tl ~round:t;
        Telemetry.note_backlog tl ~round:t ~backlog
    | None -> ()
  in
  let node_down =
    match dynamic with
    | None -> fun _ ~round:_ -> false
    | Some dr ->
        let s = Dynamic.sched dr in
        fun node ~round -> not (Dynamic.node_up s ~round ~node)
  in
  let link_severed =
    match dynamic with
    | None -> fun ~src:_ ~dst:_ ~round:_ -> false
    | Some dr ->
        let s = Dynamic.sched dr in
        fun ~src ~dst ~round -> not (Dynamic.link_up s ~round ~u:src ~v:dst)
  in
  let note_tel_drop t =
    match telemetry with
    | Some tl -> Telemetry.note_drop tl ~round:t
    | None -> ()
  in
  let enqueue_faulty fr t src dst msg =
    if Faults.crashed fr ~node:dst ~round:t then begin
      Faults.note_crash_drop fr;
      note_tel_drop t;
      match metrics with
      | Some m -> Metrics.note_crash_drop m ~dst
      | None -> ()
    end
    else if node_down dst ~round:t then begin
      (match dynamic with Some dr -> Dynamic.note_node_drop dr | None -> ());
      note_tel_drop t;
      match metrics with
      | Some m -> Metrics.note_crash_drop m ~dst
      | None -> ()
    end
    else enqueue false t src dst msg
  in
  let round = ref 0 in
  let last_active = ref 0 in
  let halted = ref false in
  let raise_round_limit () =
    let loads = Hashtbl.create 64 in
    let bump v l =
      Hashtbl.replace loads v
        (l + Option.value ~default:0 (Hashtbl.find_opt loads v))
    in
    for s = 0 to state.len - 1 do
      let l = pending.data.(s) + out_len.data.(s) in
      if l > 0 then bump node_of.data.(s) l
    done;
    let rec drain () =
      match Heap.pop held with
      | Some (_, (_, dst, _)) ->
          bump dst 1;
          drain ()
      | None -> ()
    in
    drain ();
    let pairs = Hashtbl.fold (fun v l acc -> (v, l) :: acc) loads [] in
    raise
      (Engine.Round_limit_exceeded
         {
           limit = config.max_rounds;
           outstanding = !outstanding_sends;
           queued = !queued_total;
           held = !held_count;
           busiest = Engine.top_loaded_pairs pairs;
         })
  in
  let rec flush_held fr t =
    match Heap.peek held with
    | Some ((due, _), (src, dst, msg)) when due <= t ->
        ignore (Heap.pop held);
        decr held_count;
        last_active := t;
        enqueue_faulty fr t src dst msg;
        flush_held fr t
    | _ -> ()
  in
  let rec drain_free s t budget =
    if budget > 0 && out_len.data.(s) > 0 then begin
      let head = out_head.data.(s) in
      let ddata = out_dst.data.(s) in
      let dst = Array.unsafe_get ddata head in
      let msg = Array.unsafe_get out_msg.data.(s) head in
      out_head.data.(s) <- (head + 1) land (Array.length ddata - 1);
      out_len.data.(s) <- out_len.data.(s) - 1;
      decr outstanding_sends;
      last_active := t;
      enqueue true t node_of.data.(s) dst msg;
      drain_free s t (budget - 1)
    end
  in
  let send_phase_free t =
    Vec.sort senders;
    let m = Vec.length senders in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get senders i in
      let s = get_slot v in
      drain_free s t send_cap;
      if out_len.data.(s) = 0 then begin
        on_send_list.data.(s) <- false;
        if pending.data.(s) = 0 then reclaim s
      end
      else begin
        Vec.set senders !w v;
        incr w
      end
    done;
    Vec.truncate senders !w
  in
  let rec drain_faulty fr s t budget =
    if budget > 0 && out_len.data.(s) > 0 then begin
      let v = node_of.data.(s) in
      let head = out_head.data.(s) in
      let ddata = out_dst.data.(s) in
      let dst = Array.unsafe_get ddata head in
      let msg = Array.unsafe_get out_msg.data.(s) head in
      out_head.data.(s) <- (head + 1) land (Array.length ddata - 1);
      out_len.data.(s) <- out_len.data.(s) - 1;
      decr outstanding_sends;
      last_active := t;
      (match metrics with
      | Some m -> Metrics.note_transmit m ~src:v ~dst ~round:t
      | None -> ());
      (match telemetry with
      | Some tl -> Telemetry.note_send tl ~round:t
      | None -> ());
      if link_severed ~src:v ~dst ~round:t then begin
        (match dynamic with Some dr -> Dynamic.note_link_drop dr | None -> ());
        note_tel_drop t;
        match metrics with
        | Some m -> Metrics.note_drop m ~src:v ~dst
        | None -> ()
      end
      else
        (match Faults.decide fr ~src:v ~dst ~round:t with
        | Faults.Deliver -> enqueue_faulty fr t v dst msg
        | Faults.Drop ->
            note_tel_drop t;
            (match metrics with
            | Some m -> Metrics.note_drop m ~src:v ~dst
            | None -> ())
        | Faults.Duplicate ->
            (match metrics with
            | Some m -> Metrics.note_duplicate m ~src:v ~dst
            | None -> ());
            enqueue_faulty fr t v dst msg;
            enqueue_faulty fr t v dst msg
        | Faults.Delay d ->
            (match metrics with
            | Some m -> Metrics.note_delay m ~src:v ~dst
            | None -> ());
            incr held_seq;
            incr held_count;
            Heap.push held (t + d, !held_seq) (v, dst, msg));
      drain_faulty fr s t (budget - 1)
    end
  in
  let send_phase_faulty fr t =
    Vec.sort senders;
    let m = Vec.length senders in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get senders i in
      let s = get_slot v in
      if Faults.crashed fr ~node:v ~round:t || node_down v ~round:t then begin
        Vec.set senders !w v;
        incr w
      end
      else begin
        drain_faulty fr s t send_cap;
        if out_len.data.(s) = 0 then begin
          on_send_list.data.(s) <- false;
          if pending.data.(s) = 0 then reclaim s
        end
        else begin
          Vec.set senders !w v;
          incr w
        end
      end
    done;
    Vec.truncate senders !w
  in
  let rec recv_budget t v s budget =
    if budget > 0 then
      match pick t s with
      | None -> ()
      | Some qi ->
          let src = nbrs.data.(s).(qi) in
          let msg = in_pop s qi in
          pending.data.(s) <- pending.data.(s) - 1;
          decr queued_total;
          incr messages;
          last_active := t;
          (match metrics with
          | Some m -> Metrics.note_deliver m ~src ~dst:v ~round:t
          | None -> ());
          (match telemetry with
          | Some tl -> Telemetry.note_deliver tl ~round:t
          | None -> ());
          if has_observer then observer.on_deliver ~round:t ~src ~dst:v;
          let s', actions =
            protocol.on_receive ~round:t ~node:v ~src msg state.data.(s)
          in
          state.data.(s) <- s';
          apply_actions v s t actions;
          recv_budget t v s (budget - 1)
  in
  let recv_node t v s = recv_budget t v s (min recv_cap pending.data.(s)) in
  let recv_phase_free t =
    Vec.sort receivers;
    let m = Vec.length receivers in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get receivers i in
      let s = get_slot v in
      recv_node t v s;
      if pending.data.(s) = 0 then begin
        on_recv_list.data.(s) <- false;
        if out_len.data.(s) = 0 then reclaim s
      end
      else begin
        Vec.set receivers !w v;
        incr w
      end
    done;
    Vec.truncate receivers !w
  in
  let recv_phase_faulty fr t =
    Vec.sort receivers;
    let m = Vec.length receivers in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get receivers i in
      let s = get_slot v in
      if not (Faults.crashed fr ~node:v ~round:t || node_down v ~round:t) then
        recv_node t v s;
      if pending.data.(s) = 0 then begin
        on_recv_list.data.(s) <- false;
        if out_len.data.(s) = 0 then reclaim s
      end
      else begin
        Vec.set receivers !w v;
        incr w
      end
    done;
    Vec.truncate receivers !w
  in
  (* Injection phase, at the tick position: fires after the round's
     deliveries; issued sends enter the network next round. *)
  let note_tel_inject t =
    match telemetry with
    | Some tl -> Telemetry.note_inject tl ~round:t
    | None -> ()
  in
  let inject_phase_free t =
    while !inj_ptr < ninj && injections.(!inj_ptr).at <= t do
      let inj = injections.(!inj_ptr) in
      incr inj_ptr;
      note_tel_inject t;
      let s = touch inj.node in
      let s', actions = inj.inject state.data.(s) in
      state.data.(s) <- s';
      apply_actions inj.node s t actions
    done
  in
  let inject_phase_faulty fr t =
    while !inj_ptr < ninj && injections.(!inj_ptr).at <= t do
      let inj = injections.(!inj_ptr) in
      incr inj_ptr;
      (* A crashed or churned-out node's tick would not have run: the
         injection is lost, exactly as under Engine.run's tick phase. *)
      if not (Faults.crashed fr ~node:inj.node ~round:t || node_down inj.node ~round:t)
      then begin
        note_tel_inject t;
        let s = touch inj.node in
        let s', actions = inj.inject state.data.(s) in
        state.data.(s) <- s';
        apply_actions inj.node s t actions
      end
    done
  in
  let round_end t =
    (match stats with
    | Some c -> c.executed_rounds <- c.executed_rounds + 1
    | None -> ());
    (match telemetry with
    | Some tl ->
        let in_flight = !outstanding_sends + !queued_total + !held_count in
        Telemetry.note_in_flight tl ~round:t ~in_flight
    | None -> ());
    note_peak ();
    if has_observer then begin
      let in_flight = !outstanding_sends + !queued_total + !held_count in
      match observer.on_round_end ~round:t ~in_flight with
      | `Continue -> ()
      | `Halt -> halted := true
    end
  in
  let next_injection () =
    if !inj_ptr < ninj then Some injections.(!inj_ptr).at else None
  in
  (match (faults, dynamic) with
  | None, None ->
      while
        (not !halted)
        && (!outstanding_sends > 0 || !queued_total > 0 || !inj_ptr < ninj
           || !round < config.min_rounds || keep_alive ())
      do
        incr round;
        let t = !round in
        if t > halt_cap then halted := true
        else begin
          if t > config.max_rounds then raise_round_limit ();
          let jump_to =
            if can_fast_forward && !outstanding_sends = 0 && !queued_total = 0
            then
              match next_injection () with
              | Some a when a > t -> Some (min (a - 1) config.max_rounds)
              | Some _ -> None
              | None -> Some (min config.min_rounds config.max_rounds)
            else None
          in
          match jump_to with
          | Some target -> round := max t target
          | None ->
              send_phase_free t;
              note_peak ();
              recv_phase_free t;
              inject_phase_free t;
              round_end t
        end
      done
  | _ ->
      let fr =
        match faults with Some fr -> fr | None -> Faults.start Faults.none
      in
      while
        (not !halted)
        && (!outstanding_sends > 0 || !queued_total > 0 || !held_count > 0
           || !inj_ptr < ninj
           || !round < config.min_rounds
           || keep_alive ())
      do
        incr round;
        let t = !round in
        if t > halt_cap then halted := true
        else begin
          if t > config.max_rounds then raise_round_limit ();
          let jump_to =
            if can_fast_forward && !outstanding_sends = 0 && !queued_total = 0
            then begin
              let next_due =
                match Heap.peek held with
                | Some ((due, _), _) -> Some due
                | None -> None
              in
              let next_ev =
                match (next_due, next_injection ()) with
                | None, None -> None
                | (Some _ as a), None | None, (Some _ as a) -> a
                | Some a, Some b -> Some (min a b)
              in
              match next_ev with
              | None -> Some (min config.min_rounds config.max_rounds)
              | Some a when a > t -> Some (min (a - 1) config.max_rounds)
              | Some _ -> None
            end
            else None
          in
          match jump_to with
          | Some target -> round := max t target
          | None ->
              flush_held fr t;
              send_phase_faulty fr t;
              note_peak ();
              recv_phase_faulty fr t;
              inject_phase_faulty fr t;
              round_end t
        end
      done);
  (* Completion assembly: identical to Engine.run (sorted fast path,
     else the reference engine's prepend-then-stable-sort). *)
  let comp = !comp_data in
  let len = !comp_len in
  let sorted = ref true in
  for i = 1 to len - 1 do
    let a = comp.(i - 1) and b = comp.(i) in
    if
      a.Engine.round > b.Engine.round
      || (a.Engine.round = b.Engine.round && a.Engine.node >= b.Engine.node)
    then sorted := false
  done;
  let completions =
    if !sorted then begin
      let acc = ref [] in
      for i = len - 1 downto 0 do
        acc := comp.(i) :: !acc
      done;
      !acc
    end
    else begin
      let completion_list = ref [] in
      for i = 0 to len - 1 do
        completion_list := comp.(i) :: !completion_list
      done;
      List.sort
        (fun (a : 'r Engine.completion) (b : 'r Engine.completion) ->
          match compare a.round b.round with
          | 0 -> compare a.node b.node
          | c -> c)
        !completion_list
    end
  in
  {
    Engine.completions;
    rounds = !last_active;
    messages = !messages;
    max_link_backlog = !max_backlog;
    expansion = config.receive_capacity;
  }
