(** A timeout-and-retransmit recovery layer over any protocol.

    [wrap protocol] returns a protocol that speaks the same logic over
    unreliable links: every payload is numbered per (sender, receiver)
    link and acknowledged hop-by-hop; unacknowledged payloads are
    retransmitted with exponential backoff (in rounds) up to a retry
    bound; receivers discard duplicates and release payloads to the
    inner protocol strictly in sequence order. The wrapped protocol
    therefore sees exactly the reliable FIFO channels of the paper's
    Section 2.1 model even while the {!Faults} layer is dropping,
    duplicating, delaying and reordering the physical messages
    underneath — the classic end-to-end argument, one hop at a time.

    Costs are real and measurable: every payload earns an ack (≈2× the
    message count) and a retransmit timer needs the engine to keep
    ticking while waiting, which is what the [keep_alive] hook feeds
    to {!Engine.run}. Run the wrapped protocol like this:

    {[
      let protocol, h = Reliable.wrap inner in
      let res =
        Engine.run ~faults ~keep_alive:(Reliable.keep_alive h)
          ~graph ~config ~protocol ()
      in
      let overhead = Reliable.stats h in
      ...
    ]}

    The wrapper relies on per-round ticks for its timers, so it heals
    faults only under the synchronous engine. The handle and the node
    states carry mutable tables: wrap afresh for every run (and do not
    feed a wrapped protocol to the exhaustive [Explore] checker, which
    assumes structural state). *)

type ('s, 'm) state
(** Wrapper state: the inner ['s] plus link sequencing tables. *)

type 'm msg
(** Wrapper message: a numbered payload or an ack. *)

type stats = {
  data_sent : int;  (** first transmissions of a payload. *)
  retransmits : int;
  acks_sent : int;
  duplicates_ignored : int;  (** payload copies discarded by dedup. *)
  gave_up : int;
      (** payloads abandoned after the retry budget; each one is a
          potential liveness violation for a {!Monitor.completes}
          monitor to catch. *)
}

type handle
(** Shared bookkeeping for one run of a wrapped protocol. *)

val wrap :
  ?ack_timeout:int ->
  ?max_retries:int ->
  ?metrics:Metrics.t ->
  ?telemetry:Telemetry.t ->
  ('s, 'm, 'r) Engine.protocol ->
  (('s, 'm) state, 'm msg, 'r) Engine.protocol * handle
(** [wrap protocol] names the result ["<name>+retry"]. [ack_timeout]
    (default 8) is the number of rounds a sender waits for an ack
    before the first retransmit; retry [k] waits [ack_timeout * 2^k]
    rounds (exponential backoff), and after [max_retries] (default 5)
    unacknowledged retransmits the payload is abandoned. Completion
    values pass through unchanged. [metrics] (normally the same
    recorder passed to the engine) attributes each retransmission to
    its sending node via {!Metrics.note_retransmit}.
    @raise Invalid_argument if [ack_timeout < 1] or [max_retries < 0]. *)

val keep_alive : handle -> unit -> bool
(** True while any payload awaits an ack — pass to {!Engine.run} so
    the engine keeps ticking (and timers keep firing) across rounds in
    which the network is otherwise silent. *)

val stats : handle -> stats

val pp_stats : Format.formatter -> stats -> unit
