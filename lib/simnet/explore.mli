(** Bounded model checker: exhaustive schedule exploration for
    protocols.

    The property tests sample random schedules; this module tries
    {e all} of them. Execution is modelled with fully asynchronous
    interleaving semantics — at each step the scheduler picks any one
    enabled event: transmit the head of some node's outbox onto its
    link, or deliver the head of some link's FIFO queue — which
    over-approximates every schedule the synchronous and event-driven
    engines (and any arbiter or delay oracle) can produce, because both
    only ever transmit and deliver in FIFO order per link. A safety
    predicate checked on every reachable quiescent configuration
    therefore holds under {e every} schedule of either engine.

    {2 How the state space is kept small}

    {b Canonical configurations.} Link queues live in an assoc list
    sorted by [(src, dst)] with empty queues dropped, so two
    configurations that differ only in representation hash identically.
    The visited set stores 16-byte digests of a canonical structural
    serialisation ([Marshal] without sharing, then MD5) instead of full
    configurations: memory per visited state is constant, and lookups
    never fall into the pathological collision chains of the
    polymorphic hash (which only inspects a bounded prefix of a deep
    structure). A digest collision would merge two distinct states; at
    the ≤ 2{^ 24} states a bounded run can visit the probability is
    below 2{^ -80} — negligible next to the model's own abstractions.

    {b Partial-order reduction.} A transmit event commutes with every
    other enabled event: it pops one outbox head and appends to one
    link tail, while any other event either pops that same link's head
    (FIFO queues make pop-head and append-tail commute) or touches
    disjoint state, and nothing can disable it. Each singleton
    {transmit at the lowest busy node} is therefore a persistent set,
    so exploring only that event whenever any transmit is enabled
    preserves every reachable quiescent configuration — including its
    completion sequence, because transmits complete nothing and
    delivery interleavings are not restricted. The checker goes one
    step further and collapses the whole canonical transmit chain:
    configurations are kept {e drained} (all outboxes empty, every sent
    message already on its link), and a successor is one delivery
    followed by re-draining. Since eager transmission only makes
    deliveries enabled earlier, and FIFO constraints are identical
    either way, the drained graph reaches {e exactly} the terminal
    completion sequences of the full interleaving graph (a property the
    test suite pins by comparing against the unreduced explorer on
    random small instances). Pass [~reduce:false] to explore the full
    transmit/deliver branching instead.

    {b Parallel frontier.} Exploration is breadth-first, layer by
    layer; passing [~pool] evaluates each layer's successor expansion
    and terminal checks on the shared domain pool. Dedup and counting
    happen sequentially in the caller in input order, so stats, the
    visited set and the reported violation are bit-identical for every
    jobs count. Violations are deterministic regardless of schedule:
    the whole layer is expanded and the failing quiescent configuration
    with the lowest canonical serialisation wins.

    State spaces still explode with concurrency: intended for instances
    with a handful of nodes (the test suite and [countq check] verify
    the arrow protocol's total-order safety and the central counter's
    count-set property on all schedules of 4–7 node instances). *)

type stats = {
  explored : int;  (** distinct configurations visited. *)
  terminal : int;  (** quiescent configurations checked. *)
  max_frontier : int;  (** peak BFS frontier width. *)
  dedup_hits : int;
      (** successor configurations that were already in the visited
          set — the canonicalisation's work, visible. *)
}

type outcome =
  | Exhaustive of stats
      (** every reachable configuration was visited and every quiescent
          one passed the check: a proof by exhaustion. *)
  | Budget_exhausted of stats
      (** the [max_configs] budget ran out first; the stats cover the
          explored prefix and every quiescent configuration inside it
          passed, but unexplored schedules remain — a partial result,
          not an error. *)

exception Violation of string
(** Raised by {!run} when the predicate rejects some reachable
    quiescent configuration; carries the predicate's message (from the
    lowest-canonical failing configuration of the earliest failing
    layer, so the report is deterministic). *)

val run :
  graph:Countq_topology.Graph.t ->
  protocol:('s, 'm, 'r) Engine.protocol ->
  check:('r Engine.completion list -> (unit, string) result) ->
  ?max_configs:int ->
  ?reduce:bool ->
  ?pool:Countq_util.Parallel.pool ->
  unit ->
  outcome
(** [run ~graph ~protocol ~check ()] explores every interleaving of the
    protocol's one-shot execution ([on_start] at time 0; [on_tick] is
    ignored) and applies [check] to the completion list of each
    quiescent configuration. Completions are stamped with a monotone
    event counter as their [round] (each transmit or delivery is one
    event), taken from the representative execution that first reached
    the configuration — stamps are monotone along that path but carry
    no timing meaning, so check {e values}, not times. [reduce]
    (default [true]) applies the partial-order reduction described
    above; [pool] parallelises each frontier layer (the outcome is
    identical with or without it). [max_configs] (default 1_000_000)
    bounds the visited set; exceeding it yields {!Budget_exhausted}
    with the partial stats rather than an error.
    @raise Violation on a failing quiescent configuration (checked
    before the budget verdict, so a violation inside the explored
    prefix is always reported). *)
