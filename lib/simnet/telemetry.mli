(** Windowed time-series telemetry and exemplar-span reservoirs —
    bounded-memory observability for long-horizon runs.

    {!Metrics} answers {e where} the traffic went (per node, per
    edge); a [Telemetry.t] answers {e when}: it folds every engine
    event into a ring of fixed-width round windows (throughput,
    completions, injections, in-flight, backlog, drops, retransmits
    per window), so memory is [O(windows)] no matter how long the run
    is — the horizon-scaling companion to the PR 3 recorders, and the
    data behind [countq timeline]'s sparklines.

    Like [Metrics], the recorder is {e passive}: a run with telemetry
    attached is bit-identical to the same run without (qcheck-pinned),
    and — unlike a non-default [?observer] — it does {e not} disable
    the engines' idle-gap fast-forward: a skipped round by definition
    records nothing, so jumped-over windows simply stay zero.
    Recording is one integer division plus a field increment per
    event; the BENCH telemetry-overhead probe pins the cost (≤ ~5%).

    The ring keeps the {e latest} [windows] windows; older ones fall
    off ({!evicted} counts them). Rounds must arrive non-decreasing —
    both engines guarantee this.

    {!Reservoir} is the other half of the bounded-memory story: keep
    [K] exemplar spans (first seen, slowest, uniform random) instead
    of all of them, so [countq observe] / [load] keep their span
    tables at any horizon. *)

type t

val create : ?windows:int -> window_size:int -> unit -> t
(** Fresh recorder: a ring of [windows] (default 64) windows, each
    covering [window_size] consecutive rounds (window [i] spans rounds
    [[i * window_size, (i+1) * window_size)]).
    @raise Invalid_argument if [window_size < 1] or [windows < 1]. *)

val window_size : t -> int

val windows_capacity : t -> int
(** The ring's window count (the [windows] it was created with). *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src]'s retained windows into [into],
    aligned on absolute window index: counters add, the backlog and
    in-flight maxima take the max. [into] is advanced to [src]'s newest
    window if behind (skipped windows reset to zero, as under a quiet
    stretch); source windows older than [into]'s retention range are
    dropped — exactly the eviction a live recorder would have applied.
    This is how the sharded engine folds per-shard recorders back into
    the caller's: recording the same events into one ring or into
    several merged rings of the same shape is indistinguishable.
    @raise Invalid_argument if window size or ring capacity differ. *)

(** {1 Recording hooks} — called by {!Engine.run} and
    {!Event_engine.run} (and {!Reliable.wrap} for retransmits). *)

val note_send : t -> round:int -> unit
(** A message left a node's outbox (post-fault-decision transit). *)

val note_deliver : t -> round:int -> unit
(** A message was handed to a protocol. *)

val note_complete : t -> round:int -> unit
(** An operation completed. *)

val note_inject : t -> round:int -> unit
(** The injection calendar fired one operation. *)

val note_drop : t -> round:int -> unit
(** A transmission was lost (fault drop or crashed receiver). *)

val note_retransmit : t -> round:int -> unit
(** The {!Reliable} layer retransmitted a payload. *)

val note_backlog : t -> round:int -> backlog:int -> unit
(** One incoming link holds [backlog] queued messages; the per-window
    peak is retained. *)

val note_in_flight : t -> round:int -> in_flight:int -> unit
(** Messages outstanding at a round end; per-window peak retained. *)

(** {1 Snapshots} *)

type window = {
  w_index : int;  (** window number ([w_start = w_index * window_size]). *)
  w_start : int;  (** first round covered. *)
  w_len : int;  (** rounds covered (= [window_size]). *)
  sends : int;
  deliveries : int;
  completions : int;
  injections : int;
  drops : int;
  retransmits : int;
  max_backlog : int;  (** peak single-link backlog seen in the window. *)
  max_in_flight : int;  (** peak round-end in-flight in the window. *)
}

val windows : t -> window list
(** Live windows in ascending order — the contiguous range from the
    oldest still in the ring to the newest touched, including
    all-zero windows the run fast-forwarded over. [[]] before any
    event. *)

val evicted : t -> int
(** Windows that have fallen off the ring. *)

val to_jsonl : t -> string
(** One [{"type":"window", …}] object per live window, ascending —
    fields as in {!window}. Each line parses with
    {!Countq_util.Json.of_string}. *)

val sparkline : float array -> string
(** One block glyph per value ([▁▂▃▄▅▆▇█]), scaled to the array's
    maximum; all-zero input renders as all-[▁]. For the [countq
    timeline] rendering. *)

(** {1 Exemplar spans} *)

module Reservoir : sig
  type 'a res
  (** A bounded-memory sample of a span stream. The element type is
      abstract (usually {!Span.t}; the streaming [Load] path uses bare
      op descriptors) — the caller passes each element's delay at
      {!note} time, so this module stays independent of the span
      representation. *)

  val create :
    ?first:int -> ?slowest:int -> ?sample:int -> seed:int64 -> unit -> 'a res
  (** Keep up to [first] (default 4) earliest-noted elements, [slowest]
      (default 8) completed elements of largest delay, and a [sample]
      (default 8) uniform reservoir (Vitter's algorithm R) over all
      noted elements. [seed] drives the reservoir's deterministic RNG. *)

  val note : 'a res -> delay:int option -> 'a -> unit
  (** Record one element (streaming; O(1) memory). [delay = None]
      marks it stranded (injected, never completed): it is counted,
      still eligible for the first/sample policies, but never for
      [slowest]. *)

  val seen : 'a res -> int
  (** Elements noted so far. *)

  val completed : 'a res -> int

  val stranded : 'a res -> int
  (** Elements noted without a completion (delay [None]). *)

  val exemplars : 'a res -> (string * 'a) list
  (** The retained elements, tagged ["first"] (in arrival order),
      ["slowest"] (largest delay first), ["sample"] (reservoir, no
      meaningful order). An element retained by several policies
      appears once per policy. *)
end
