(* Per-node / per-edge execution metrics. See metrics.mli.

   Layout mirrors the active-set engine's: per-node counters are plain
   int arrays; per-directed-edge counters live in one CSR-indexed block
   keyed by the RECEIVER's row (slot of edge src -> dst = dst's base +
   position of src in dst's sorted neighbour array). That is the same
   slot the engine computes anyway for its incoming rings, so the
   engine-side hooks ([note_transmit_at] / [note_deliver_at]) are a
   couple of array increments — no search, no hashing, no allocation —
   and the metrics-on overhead the BENCH_3.json probe measures stays in
   the low single digits. *)

module Graph = Countq_topology.Graph

(* Per-node send/receive totals are NOT maintained online: they are row
   (and column) sums of the per-edge counters, computed at snapshot
   time, which halves the array traffic on the two per-message hooks. *)
type t = {
  nodes : int;
  (* per-node (rare events only) *)
  drops : int array;
  dups : int array;
  delays : int array;
  crash_drops : int array;
  retransmits : int array;
  peak_backlog : int array;
  busy : int array;
  last_busy : int array;  (* last round counted into [busy]; -1 = none *)
  (* per-directed-edge, CSR-indexed *)
  nbrs : int array array;  (* sorted neighbour arrays, aliased from the graph *)
  off : int array;  (* off.(v) = CSR base of v's outgoing edge slots *)
  e_sends : int array;
  e_receives : int array;
  e_drops : int array;
  e_dups : int array;
  e_delays : int array;
}

let create ~graph =
  let nodes = Graph.n graph in
  let nbrs = Array.init nodes (Graph.neighbors graph) in
  let off = Array.make (nodes + 1) 0 in
  for v = 0 to nodes - 1 do
    off.(v + 1) <- off.(v) + Array.length nbrs.(v)
  done;
  let m2 = off.(nodes) in
  {
    nodes;
    drops = Array.make nodes 0;
    dups = Array.make nodes 0;
    delays = Array.make nodes 0;
    crash_drops = Array.make nodes 0;
    retransmits = Array.make nodes 0;
    peak_backlog = Array.make nodes 0;
    busy = Array.make nodes 0;
    last_busy = Array.make nodes (-1);
    nbrs;
    off;
    e_sends = Array.make m2 0;
    e_receives = Array.make m2 0;
    e_drops = Array.make m2 0;
    e_dups = Array.make m2 0;
    e_delays = Array.make m2 0;
  }

let n t = t.nodes

(* A fresh all-zero recorder sharing [t]'s shape (the CSR offsets and
   neighbour aliases are immutable, so aliasing them is free). The
   sharded engine gives each shard its own recorder built this way and
   folds them back with [merge_into]. *)
let create_like t =
  let nodes = t.nodes in
  let m2 = t.off.(nodes) in
  {
    nodes;
    drops = Array.make nodes 0;
    dups = Array.make nodes 0;
    delays = Array.make nodes 0;
    crash_drops = Array.make nodes 0;
    retransmits = Array.make nodes 0;
    peak_backlog = Array.make nodes 0;
    busy = Array.make nodes 0;
    last_busy = Array.make nodes (-1);
    nbrs = t.nbrs;
    off = t.off;
    e_sends = Array.make m2 0;
    e_receives = Array.make m2 0;
    e_drops = Array.make m2 0;
    e_dups = Array.make m2 0;
    e_delays = Array.make m2 0;
  }

(* Fold [src] into [into]: counters add, peaks max. [busy] also adds,
   which is only correct when each node's busy marks live in at most
   one of the two recorders — the sharded engine's ownership discipline
   (node [v]'s transmits and deliveries are always recorded by [v]'s
   owning shard) guarantees exactly that. *)
let merge_into ~into src =
  if into.nodes <> src.nodes || into.off.(into.nodes) <> src.off.(src.nodes)
  then invalid_arg "Metrics.merge_into: recorders have different shapes";
  let add a b =
    for i = 0 to Array.length a - 1 do
      a.(i) <- a.(i) + b.(i)
    done
  in
  add into.drops src.drops;
  add into.dups src.dups;
  add into.delays src.delays;
  add into.crash_drops src.crash_drops;
  add into.retransmits src.retransmits;
  add into.busy src.busy;
  for v = 0 to into.nodes - 1 do
    if src.peak_backlog.(v) > into.peak_backlog.(v) then
      into.peak_backlog.(v) <- src.peak_backlog.(v);
    if src.last_busy.(v) > into.last_busy.(v) then
      into.last_busy.(v) <- src.last_busy.(v)
  done;
  add into.e_sends src.e_sends;
  add into.e_receives src.e_receives;
  add into.e_drops src.e_drops;
  add into.e_dups src.e_dups;
  add into.e_delays src.e_delays

(* Slot of the directed edge src -> dst: dst's CSR base + position of
   src in dst's sorted neighbour array — linear scan for the short
   rows that dominate the sparse topologies (list, ring, mesh), binary
   search beyond (the star's centre). Same indexing technique as
   Engine.nbr_slot. *)
let edge_slot t ~src ~dst =
  let nbrs = Array.unsafe_get t.nbrs dst in
  let len = Array.length nbrs in
  let pos =
    if len <= 8 then begin
      let i = ref 0 in
      while !i < len && Array.unsafe_get nbrs !i <> src do
        incr i
      done;
      if !i < len then !i else -1
    end
    else begin
      let lo = ref 0 and hi = ref (len - 1) in
      let res = ref (-1) in
      while !res < 0 && !lo <= !hi do
        let mid = (!lo + !hi) lsr 1 in
        let x = Array.unsafe_get nbrs mid in
        if x = src then res := mid
        else if x < src then lo := mid + 1
        else hi := mid - 1
      done;
      !res
    end
  in
  if pos < 0 then invalid_arg "Metrics: not an edge of the graph";
  Array.unsafe_get t.off dst + pos

let[@inline] mark_busy t v round =
  if round > Array.unsafe_get t.last_busy v then begin
    Array.unsafe_set t.last_busy v round;
    Array.unsafe_set t.busy v (Array.unsafe_get t.busy v + 1)
  end

(* Fast engine-side hooks: the engine passes the edge slot it already
   computed for its own CSR incoming rings (identical layout: both are
   prefix sums of [Graph.neighbors] lengths in node order). *)
let[@inline] note_transmit_at t ~slot ~src ~round =
  Array.unsafe_set t.e_sends slot (Array.unsafe_get t.e_sends slot + 1);
  mark_busy t src round

let[@inline] note_deliver_at t ~slot ~dst ~round =
  Array.unsafe_set t.e_receives slot (Array.unsafe_get t.e_receives slot + 1);
  mark_busy t dst round

(* Search-based variants for recorders that don't track slots
   (Reference, Async, fault paths). *)
let note_transmit t ~src ~dst ~round =
  note_transmit_at t ~slot:(edge_slot t ~src ~dst) ~src ~round

let note_deliver t ~src ~dst ~round =
  note_deliver_at t ~slot:(edge_slot t ~src ~dst) ~dst ~round

let note_drop t ~src ~dst =
  t.drops.(src) <- t.drops.(src) + 1;
  let e = edge_slot t ~src ~dst in
  t.e_drops.(e) <- t.e_drops.(e) + 1

let note_duplicate t ~src ~dst =
  t.dups.(src) <- t.dups.(src) + 1;
  let e = edge_slot t ~src ~dst in
  t.e_dups.(e) <- t.e_dups.(e) + 1

let note_delay t ~src ~dst =
  t.delays.(src) <- t.delays.(src) + 1;
  let e = edge_slot t ~src ~dst in
  t.e_delays.(e) <- t.e_delays.(e) + 1

let note_crash_drop t ~dst = t.crash_drops.(dst) <- t.crash_drops.(dst) + 1
let note_retransmit t ~node = t.retransmits.(node) <- t.retransmits.(node) + 1

let[@inline] note_backlog t ~node ~backlog =
  if backlog > Array.unsafe_get t.peak_backlog node then
    Array.unsafe_set t.peak_backlog node backlog

type node_stats = {
  node : int;
  sends : int;
  receives : int;
  drops : int;
  dups : int;
  delays : int;
  crash_drops : int;
  retransmits : int;
  peak_backlog : int;
  busy_rounds : int;
}

type edge_stats = {
  src : int;
  dst : int;
  e_sends : int;
  e_receives : int;
  e_drops : int;
  e_dups : int;
  e_delays : int;
}

(* Sends out of [v]: the graph is undirected, so the possible
   destinations are exactly v's neighbours; sum e_sends over each edge
   v -> u (slot in u's row). *)
let node_sends (t : t) v =
  let s = ref 0 in
  Array.iter
    (fun u -> s := !s + t.e_sends.(edge_slot t ~src:v ~dst:u))
    t.nbrs.(v);
  !s

(* Receives into [v]: row sum of its CSR block. *)
let node_receives (t : t) v =
  let base = t.off.(v) in
  let s = ref 0 in
  for i = 0 to Array.length t.nbrs.(v) - 1 do
    s := !s + t.e_receives.(base + i)
  done;
  !s

let node_stats (t : t) v =
  {
    node = v;
    sends = node_sends t v;
    receives = node_receives t v;
    drops = t.drops.(v);
    dups = t.dups.(v);
    delays = t.delays.(v);
    crash_drops = t.crash_drops.(v);
    retransmits = t.retransmits.(v);
    peak_backlog = t.peak_backlog.(v);
    busy_rounds = t.busy.(v);
  }

let per_node t = List.init t.nodes (node_stats t)

let node_active (s : node_stats) =
  s.sends > 0 || s.receives > 0 || s.drops > 0 || s.dups > 0 || s.delays > 0
  || s.crash_drops > 0 || s.retransmits > 0 || s.peak_backlog > 0

let per_edge (t : t) =
  let acc = ref [] in
  for dst = t.nodes - 1 downto 0 do
    let base = t.off.(dst) in
    for i = Array.length t.nbrs.(dst) - 1 downto 0 do
      let e = base + i in
      if
        t.e_sends.(e) > 0 || t.e_receives.(e) > 0 || t.e_drops.(e) > 0
        || t.e_dups.(e) > 0 || t.e_delays.(e) > 0
      then
        acc :=
          {
            src = t.nbrs.(dst).(i);
            dst;
            e_sends = t.e_sends.(e);
            e_receives = t.e_receives.(e);
            e_drops = t.e_drops.(e);
            e_dups = t.e_dups.(e);
            e_delays = t.e_delays.(e);
          }
          :: !acc
    done
  done;
  (* Rows above are receiver-major; present src-major for stable,
     reader-friendly output. *)
  List.sort
    (fun (a : edge_stats) (b : edge_stats) ->
      compare (a.src, a.dst) (b.src, b.dst))
    !acc

let total_sends (t : t) = Array.fold_left ( + ) 0 t.e_sends
let total_receives (t : t) = Array.fold_left ( + ) 0 t.e_receives

let traffic (t : t) v = node_sends t v + node_receives t v

(* Same top-k shape as Engine.top_loaded, re-implemented here because
   Engine depends on this module (the ?metrics hook), not vice versa. *)
let hottest_nodes ?(k = 5) t =
  let acc = ref [] in
  for v = t.nodes - 1 downto 0 do
    let load = traffic t v in
    if load > 0 then acc := (v, load) :: !acc
  done;
  let sorted =
    List.sort
      (fun (v1, l1) (v2, l2) ->
        match compare l2 l1 with 0 -> compare v1 v2 | c -> c)
      !acc
  in
  List.filteri (fun i _ -> i < k) sorted

let hottest_edges ?(k = 5) t =
  let all =
    List.map
      (fun (e : edge_stats) -> ((e.src, e.dst), e.e_sends + e.e_receives))
      (per_edge t)
  in
  let sorted =
    List.sort
      (fun (e1, t1) (e2, t2) ->
        match compare t2 t1 with 0 -> compare e1 e2 | c -> c)
      (List.filter (fun (_, traffic) -> traffic > 0) all)
  in
  List.filteri (fun i _ -> i < k) sorted

let ramp = " .:-=+*#%@"

let render_heatmap ?(per_row = 64) t =
  if per_row < 1 then invalid_arg "Metrics.render_heatmap: per_row must be >= 1";
  let peak = ref 0 in
  for v = 0 to t.nodes - 1 do
    if traffic t v > !peak then peak := traffic t v
  done;
  let levels = String.length ramp in
  let cell v =
    let x = traffic t v in
    if !peak = 0 || x = 0 then ramp.[if x = 0 then 0 else 1]
    else ramp.[min (levels - 1) (1 + ((x * (levels - 1)) / !peak))]
  in
  let buf = Buffer.create (t.nodes + 128) in
  Buffer.add_string buf
    (Printf.sprintf
       "node traffic heatmap (sends + receives; peak = %d; scale \"%s\")\n"
       !peak ramp);
  let v = ref 0 in
  while !v < t.nodes do
    let last = min (t.nodes - 1) (!v + per_row - 1) in
    Buffer.add_string buf (Printf.sprintf "%6d  " !v);
    for u = !v to last do
      Buffer.add_char buf (cell u)
    done;
    Buffer.add_char buf '\n';
    v := last + 1
  done;
  Buffer.contents buf

let to_jsonl t =
  let module J = Countq_util.Json in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (s : node_stats) ->
      if node_active s then begin
        Buffer.add_string buf
          (J.to_string
             (J.Obj
                [
                  ("type", J.Str "node");
                  ("node", J.Int s.node);
                  ("sends", J.Int s.sends);
                  ("receives", J.Int s.receives);
                  ("drops", J.Int s.drops);
                  ("dups", J.Int s.dups);
                  ("delays", J.Int s.delays);
                  ("crash_drops", J.Int s.crash_drops);
                  ("retransmits", J.Int s.retransmits);
                  ("peak_backlog", J.Int s.peak_backlog);
                  ("busy_rounds", J.Int s.busy_rounds);
                ]));
        Buffer.add_char buf '\n'
      end)
    (per_node t);
  List.iter
    (fun (e : edge_stats) ->
      Buffer.add_string buf
        (J.to_string
           (J.Obj
              [
                ("type", J.Str "edge");
                ("src", J.Int e.src);
                ("dst", J.Int e.dst);
                ("sends", J.Int e.e_sends);
                ("receives", J.Int e.e_receives);
                ("drops", J.Int e.e_drops);
                ("dups", J.Int e.e_dups);
                ("delays", J.Int e.e_delays);
              ]));
      Buffer.add_char buf '\n')
    (per_edge t);
  Buffer.contents buf
