(** Test-only reference implementation of the synchronous engine.

    This is the dense engine {!Engine.run} used to be: every round
    scans all [n] nodes in each phase and every neighbour lookup goes
    through a Hashtbl. It is retained verbatim as the executable
    specification the optimised active-set engine is tested against —
    the qcheck properties in [test/test_equiv.ml] assert that both
    produce bit-identical {!Engine.result} records (and bit-identical
    {!Engine.Round_limit_exceeded} payloads) over random protocols,
    topologies, arbiters, capacities and fault plans.

    Do not call this from production code: it is Θ(n) per round even
    when one node is active, which is exactly the cost the active-set
    engine exists to avoid. *)

val run :
  ?faults:Faults.runtime ->
  ?dynamic:Dynamic.runtime ->
  ?observer:'r Engine.observer ->
  ?keep_alive:(unit -> bool) ->
  ?metrics:Metrics.t ->
  graph:Countq_topology.Graph.t ->
  config:Engine.config ->
  protocol:('s, 'm, 'r) Engine.protocol ->
  unit ->
  'r Engine.result
(** Behaviourally identical to {!Engine.run} (same semantics, same
    determinism contract, same exceptions), just slower. *)
