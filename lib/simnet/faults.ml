(* Deterministic fault plans for the simulation engines. See faults.mli. *)

module Rng = Countq_util.Rng

type decision = Deliver | Drop | Duplicate | Delay of int

type crash = { node : int; at_round : int; recover_at : int option }

type profile = {
  drop : float;
  duplicate : float;
  delay : float;
  delay_max : int;
  seed : int64;
}

type rule =
  | Nothing
  | Random of profile
  | Nth of { index : int; what : decision }
  | Oracle of (src:int -> dst:int -> round:int -> index:int -> decision)

type plan = { plan_label : string; rule : rule; plan_crashes : crash list }

let none = { plan_label = "none"; rule = Nothing; plan_crashes = [] }

let is_none p = p.rule = Nothing && p.plan_crashes = []

let label p = p.plan_label
let crashes p = p.plan_crashes

let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Faults.random: %s must be in [0, 1]" name)

let check_crashes cs =
  List.iter
    (fun c ->
      if c.node < 0 then invalid_arg "Faults: crash node must be >= 0";
      if c.at_round < 0 then invalid_arg "Faults: crash round must be >= 0";
      match c.recover_at with
      | Some r when r <= c.at_round ->
          invalid_arg "Faults: recovery must come after the crash"
      | _ -> ())
    cs

let random ~label ~seed ?(drop = 0.) ?(duplicate = 0.) ?(delay = 0.)
    ?(delay_max = 5) ?(crashes = []) () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "delay" delay;
  if delay_max < 1 then invalid_arg "Faults.random: delay_max must be >= 1";
  check_crashes crashes;
  {
    plan_label = label;
    rule = Random { drop; duplicate; delay; delay_max; seed };
    plan_crashes = crashes;
  }

let nth_plan what default_label label index =
  if index < 0 then invalid_arg "Faults: transmission index must be >= 0";
  {
    plan_label = Option.value label ~default:default_label;
    rule = Nth { index; what };
    plan_crashes = [];
  }

let drop_nth ?label i = nth_plan Drop (Printf.sprintf "drop-%d" i) label i

let dup_nth ?label i = nth_plan Duplicate (Printf.sprintf "dup-%d" i) label i

let delay_nth ?label ~by i =
  if by < 1 then invalid_arg "Faults.delay_nth: delay must be >= 1";
  nth_plan (Delay by) (Printf.sprintf "delay-%d-by-%d" i by) label i

let crash_only ~label cs =
  check_crashes cs;
  { plan_label = label; rule = Nothing; plan_crashes = cs }

let oracle ~label ?(crashes = []) f =
  check_crashes crashes;
  { plan_label = label; rule = Oracle f; plan_crashes = crashes }

let registry_seed = 0xfa117_5eedL

let named =
  [
    ("none", none);
    ("drop-first", drop_nth ~label:"drop-first" 0);
    ("lossy", random ~label:"lossy" ~seed:registry_seed ~drop:0.05 ());
    ("very-lossy", random ~label:"very-lossy" ~seed:registry_seed ~drop:0.2 ());
    ("dup", random ~label:"dup" ~seed:registry_seed ~duplicate:0.1 ());
    ( "jitter",
      random ~label:"jitter" ~seed:registry_seed ~delay:0.3 ~delay_max:5 () );
    ( "chaos",
      random ~label:"chaos" ~seed:registry_seed ~drop:0.05 ~duplicate:0.05
        ~delay:0.2 ~delay_max:5 () );
    ( "crash-root",
      crash_only ~label:"crash-root"
        [ { node = 0; at_round = 3; recover_at = None } ] );
    ( "crash-restart",
      crash_only ~label:"crash-restart"
        [ { node = 0; at_round = 3; recover_at = Some 40 } ] );
  ]

let find name =
  let name = String.lowercase_ascii (String.trim name) in
  List.assoc_opt name named

type stats = {
  transmissions : int;
  dropped : int;
  duplicated : int;
  delayed : int;
  crash_dropped : int;
}

let no_stats =
  { transmissions = 0; dropped = 0; duplicated = 0; delayed = 0; crash_dropped = 0 }

type runtime = {
  rt_plan : plan;
  rng : Rng.t option;  (** only for [Random] rules. *)
  mutable index : int;
  mutable s : stats;
}

let start p =
  let rng =
    match p.rule with Random { seed; _ } -> Some (Rng.create seed) | _ -> None
  in
  { rt_plan = p; rng; index = 0; s = no_stats }

let plan rt = rt.rt_plan

let decide rt ~src ~dst ~round =
  let index = rt.index in
  rt.index <- index + 1;
  let d =
    match rt.rt_plan.rule with
    | Nothing -> Deliver
    | Nth { index = i; what } -> if index = i then what else Deliver
    | Oracle f -> f ~src ~dst ~round ~index
    | Random { drop; duplicate; delay; delay_max; _ } ->
        (* One fixed number of draws per transmission, so the stream
           position is independent of earlier outcomes. *)
        let rng = Option.get rt.rng in
        let u = Rng.float rng in
        let spike = 1 + Rng.below rng delay_max in
        if u < drop then Drop
        else if u < drop +. duplicate then Duplicate
        else if u < drop +. duplicate +. delay then Delay spike
        else Deliver
  in
  let d = match d with Delay k when k < 1 -> Deliver | d -> d in
  rt.s <-
    (let s = { rt.s with transmissions = rt.s.transmissions + 1 } in
     match d with
     | Deliver -> s
     | Drop -> { s with dropped = s.dropped + 1 }
     | Duplicate -> { s with duplicated = s.duplicated + 1 }
     | Delay _ -> { s with delayed = s.delayed + 1 });
  d

let crashed rt ~node ~round =
  List.exists
    (fun c ->
      c.node = node && round >= c.at_round
      && match c.recover_at with None -> true | Some r -> round < r)
    rt.rt_plan.plan_crashes

let note_crash_drop rt =
  rt.s <- { rt.s with crash_dropped = rt.s.crash_dropped + 1 }

let stats rt = rt.s

let pp_stats ppf s =
  Format.fprintf ppf
    "%d transmissions: %d dropped, %d duplicated, %d delayed, %d lost to crashes"
    s.transmissions s.dropped s.duplicated s.delayed s.crash_dropped
