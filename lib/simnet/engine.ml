(* Synchronous simulator for the Section 2.1 model. See engine.mli.

   Hot-path organisation (the "active-set" engine): per-round cost is
   proportional to the number of nodes that actually do something, not
   to n. Two intrusive worklists — nodes with a non-empty outbox and
   nodes with pending incoming messages — are sorted ascending before
   each phase so the iteration order (and with it arbiter decisions,
   fault-plan transmission indices and observer callback order) is
   bit-identical to a dense 0..n-1 scan; Reference.run keeps the old
   dense engine as the oracle this is tested against. When the network
   is quiescent and nothing observable happens per round (no tick
   handler, default observer, default keep_alive), idle rounds are
   fast-forwarded wholesale to the next round with work. The fault-free
   specialisation is a separate loop, so ?faults:None never pays a
   crash/decision branch per message.

   Node state lives in parallel arrays, not per-node records: incoming
   rings are flat CSR-indexed (head/len in plain int arrays, the data
   array of each ring allocated lazily on first use and grown by
   doubling), outboxes are parallel dst/payload rings per node. Run
   setup is a handful of O(n) array fills instead of several heap
   allocations per node, and an empty-queue test is a single int read
   — both matter because the one-shot experiments construct thousands
   of short-lived engine instances and the tightest runs move one
   message per round. *)

module Graph = Countq_topology.Graph
module Heap = Countq_util.Heap
module Vec = Countq_util.Vec

type arbiter =
  | Round_robin
  | Lowest_sender_first
  | Custom of (round:int -> node:int -> candidates:int list -> int)

type config = {
  receive_capacity : int;
  send_capacity : int;
  arbiter : arbiter;
  max_rounds : int;
  min_rounds : int;
}

let default_config =
  {
    receive_capacity = 1;
    send_capacity = 1;
    arbiter = Round_robin;
    max_rounds = 10_000_000;
    min_rounds = 0;
  }

let config_with_capacity c =
  if c < 1 then invalid_arg "Engine.config_with_capacity: c must be >= 1";
  { default_config with receive_capacity = c; send_capacity = c }

type ('m, 'r) action = Send of int * 'm | Complete of 'r

type ('s, 'm, 'r) protocol = {
  name : string;
  initial_state : int -> 's;
  on_start : node:int -> 's -> 's * ('m, 'r) action list;
  on_receive :
    round:int -> node:int -> src:int -> 'm -> 's -> 's * ('m, 'r) action list;
  on_tick : (round:int -> node:int -> 's -> 's * ('m, 'r) action list) option;
}

let no_tick = None

type 'r completion = { node : int; round : int; value : 'r }

type 'r result = {
  completions : 'r completion list;
  rounds : int;
  messages : int;
  max_link_backlog : int;
  expansion : int;
}

exception Not_a_neighbor of { node : int; dst : int }

exception
  Round_limit_exceeded of {
    limit : int;
    outstanding : int;
    queued : int;
    held : int;
    busiest : (int * int) list;
  }

type 'r observer = {
  on_deliver : round:int -> src:int -> dst:int -> unit;
  on_complete : round:int -> node:int -> value:'r -> unit;
  on_round_end : round:int -> in_flight:int -> [ `Continue | `Halt ];
}

let null_observer =
  {
    on_deliver = (fun ~round:_ ~src:_ ~dst:_ -> ());
    on_complete = (fun ~round:_ ~node:_ ~value:_ -> ());
    on_round_end = (fun ~round:_ ~in_flight:_ -> `Continue);
  }

let no_keep_alive () = false

(* Top-[k] (node, load) pairs from a per-node load array: heaviest
   first, ties broken towards the lower node id; zero-load nodes are
   omitted. Shared by both engines' Round_limit_exceeded payloads. *)
let top_loaded_pairs ?(k = 5) pairs =
  let sorted =
    List.sort
      (fun (v1, l1) (v2, l2) ->
        match compare l2 l1 with 0 -> compare v1 v2 | c -> c)
      (List.filter (fun (_, load) -> load > 0) pairs)
  in
  List.filteri (fun i _ -> i < k) sorted

let top_loaded ?k loads =
  let acc = ref [] in
  Array.iteri (fun v load -> if load > 0 then acc := (v, load) :: !acc) loads;
  top_loaded_pairs ?k !acc

(* Index of [u] in the sorted, deduplicated neighbour array (Graph
   guarantees both), or -1. Replaces the old per-node id->index
   Hashtbl: no hashing, no boxing, cache-friendly. *)
let nbr_slot nbrs u =
  let lo = ref 0 and hi = ref (Array.length nbrs - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let x = Array.unsafe_get nbrs mid in
    if x = u then res := mid else if x < u then lo := mid + 1 else hi := mid - 1
  done;
  !res

let total_delay res =
  List.fold_left (fun acc (c : _ completion) -> acc + c.round) 0 res.completions

let max_delay res =
  List.fold_left (fun acc (c : _ completion) -> max acc c.round) 0 res.completions

let completion_count res = List.length res.completions

let run ?faults ?dynamic ?(observer = null_observer)
    ?(keep_alive = no_keep_alive) ?metrics ?telemetry ~graph ~config
    ~protocol () =
  if config.receive_capacity < 1 || config.send_capacity < 1 then
    invalid_arg "Engine.run: capacities must be >= 1";
  let n = Graph.n graph in
  let send_cap = config.send_capacity in
  let recv_cap = config.receive_capacity in
  let states = Array.init n protocol.initial_state in
  (* Per-node state as parallel arrays. [Graph.neighbors] is zero-copy,
     so [nbrs_of] is one array of aliases. Incoming rings live in one
     flat CSR-indexed block ([inq_off.(v)] is node [v]'s base; slot
     order is the receiver's sorted neighbour order); outboxes are a
     dst ring and a payload ring per node sharing one head/len pair.
     Every ring's data array starts as the shared empty array and is
     allocated on first push (capacity 0 forces the grow path), so
     allocation tracks the set of links actually exercised, not the
     graph size. *)
  let nbrs_of = Array.init n (Graph.neighbors graph) in
  let inq_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    inq_off.(v + 1) <- inq_off.(v) + Array.length nbrs_of.(v)
  done;
  let inq_data = Array.make inq_off.(n) [||] in
  let inq_head = Array.make inq_off.(n) 0 in
  let inq_len = Array.make inq_off.(n) 0 in
  let out_dst = Array.make n [||] in
  let out_msg = Array.make n [||] in
  let out_head = Array.make n 0 in
  let out_len = Array.make n 0 in
  let rr_pointer = Array.make n 0 in
  let pending = Array.make n 0 in
  (* The two active sets, with their intrusive membership bytes. Sorted
     ascending at the top of each phase; compacted in place as nodes go
     quiescent. *)
  let senders = Vec.create () in
  let receivers = Vec.create () in
  let on_send_list = Bytes.make n '\000' in
  let on_recv_list = Bytes.make n '\000' in
  (* Completions accumulate in a growable array in chronological order;
     result assembly applies the same stable (round, node) sort as the
     reference engine, so ties land identically. *)
  let comp_data = ref [||] in
  let comp_len = ref 0 in
  let push_completion (c : _ completion) =
    if !comp_len = Array.length !comp_data then begin
      let d = Array.make (max 8 (2 * !comp_len)) c in
      Array.blit !comp_data 0 d 0 !comp_len;
      comp_data := d
    end;
    !comp_data.(!comp_len) <- c;
    incr comp_len
  in
  let messages = ref 0 in
  let max_backlog = ref 0 in
  let outstanding_sends = ref 0 in
  let queued_total = ref 0 in
  (* Messages postponed by a Delay fault, keyed by delivery round (FIFO
     among equal rounds via the insertion counter). *)
  let held : (int * int, int * int * 'm) Heap.t = Heap.create () in
  let held_count = ref 0 in
  let held_seq = ref 0 in
  let has_observer = observer != null_observer in
  (* Idle rounds may be skipped wholesale only when nothing observable
     can happen in them: no tick handler, the do-nothing observer and
     the default keep_alive (both recognised by physical equality — a
     custom hook, even an equivalent one, disables fast-forward). *)
  let can_fast_forward =
    (match protocol.on_tick with None -> true | Some _ -> false)
    && (not has_observer)
    && keep_alive == no_keep_alive
  in
  (* Ring primitives. Capacities are always 0 or a power of two, so the
     wrap-around is a bit-mask; a push into a full (or virgin) ring
     doubles it, seeding fresh slots from the pushed element so no
     dummy value is needed. *)
  let in_push slot msg =
    let len = Array.unsafe_get inq_len slot in
    let data = Array.unsafe_get inq_data slot in
    let cap = Array.length data in
    let data =
      if len = cap then begin
        let d = Array.make (if cap = 0 then 2 else 2 * cap) msg in
        let head = Array.unsafe_get inq_head slot in
        let mask = cap - 1 in
        for i = 0 to len - 1 do
          Array.unsafe_set d i (Array.unsafe_get data ((head + i) land mask))
        done;
        Array.unsafe_set inq_data slot d;
        Array.unsafe_set inq_head slot 0;
        d
      end
      else data
    in
    Array.unsafe_set data
      ((Array.unsafe_get inq_head slot + len) land (Array.length data - 1))
      msg;
    Array.unsafe_set inq_len slot (len + 1)
  in
  let in_pop slot =
    let head = Array.unsafe_get inq_head slot in
    let data = Array.unsafe_get inq_data slot in
    let x = Array.unsafe_get data head in
    Array.unsafe_set inq_head slot ((head + 1) land (Array.length data - 1));
    Array.unsafe_set inq_len slot (Array.unsafe_get inq_len slot - 1);
    x
  in
  let out_push v dst msg =
    let len = Array.unsafe_get out_len v in
    let ddata = Array.unsafe_get out_dst v in
    let cap = Array.length ddata in
    if len = cap then begin
      let cap' = if cap = 0 then 2 else 2 * cap in
      let d = Array.make cap' dst in
      let m = Array.make cap' msg in
      let mdata = Array.unsafe_get out_msg v in
      let head = Array.unsafe_get out_head v in
      let mask = cap - 1 in
      for i = 0 to len - 1 do
        let j = (head + i) land mask in
        Array.unsafe_set d i (Array.unsafe_get ddata j);
        Array.unsafe_set m i (Array.unsafe_get mdata j)
      done;
      Array.unsafe_set out_dst v d;
      Array.unsafe_set out_msg v m;
      Array.unsafe_set out_head v 0
    end;
    let ddata = Array.unsafe_get out_dst v in
    let mask = Array.length ddata - 1 in
    let j = (Array.unsafe_get out_head v + len) land mask in
    Array.unsafe_set ddata j dst;
    Array.unsafe_set (Array.unsafe_get out_msg v) j msg;
    Array.unsafe_set out_len v (len + 1)
  in
  let rec apply_actions v round actions =
    match actions with
    | [] -> ()
    | Send (dst, msg) :: rest ->
        if nbr_slot nbrs_of.(v) dst < 0 then
          raise (Not_a_neighbor { node = v; dst });
        out_push v dst msg;
        incr outstanding_sends;
        if Bytes.unsafe_get on_send_list v = '\000' then begin
          Bytes.unsafe_set on_send_list v '\001';
          Vec.push senders v
        end;
        apply_actions v round rest
    | Complete value :: rest ->
        if has_observer then observer.on_complete ~round ~node:v ~value;
        (match telemetry with
        | Some tl -> Telemetry.note_complete tl ~round
        | None -> ());
        push_completion { node = v; round; value };
        apply_actions v round rest
  in
  (* Time 0: the one-shot requests are issued; no communication yet. *)
  for v = 0 to n - 1 do
    let s, actions = protocol.on_start ~node:v states.(v) in
    states.(v) <- s;
    apply_actions v 0 actions
  done;
  (* Picks the sender whose queue head should be delivered next, per the
     configured arbitration policy — dispatched once per run, not per
     message. Returns the incoming-queue index (relative to the node's
     CSR base). *)
  let pick =
    match config.arbiter with
    | Lowest_sender_first ->
        fun _t v ->
          let base = inq_off.(v) in
          let k = inq_off.(v + 1) - base in
          let rec scan i =
            if i >= k then None
            else if Array.unsafe_get inq_len (base + i) > 0 then Some i
            else scan (i + 1)
          in
          scan 0
    | Round_robin ->
        fun _t v ->
          let base = inq_off.(v) in
          let k = inq_off.(v + 1) - base in
          (* rr_pointer and steps are both < k, so the wrap-around is a
             conditional subtract, not a division. *)
          let rec scan steps =
            if steps >= k then None
            else begin
              let idx = rr_pointer.(v) + steps in
              let idx = if idx >= k then idx - k else idx in
              if Array.unsafe_get inq_len (base + idx) > 0 then begin
                rr_pointer.(v) <- (if idx + 1 >= k then 0 else idx + 1);
                Some idx
              end
              else scan (steps + 1)
            end
          in
          scan 0
    | Custom f ->
        fun t v ->
          let base = inq_off.(v) in
          let k = inq_off.(v + 1) - base in
          let nbrs = nbrs_of.(v) in
          let candidates = ref [] in
          for i = k - 1 downto 0 do
            if Array.unsafe_get inq_len (base + i) > 0 then
              candidates := nbrs.(i) :: !candidates
          done;
          if !candidates = [] then None
          else begin
            let src = f ~round:t ~node:v ~candidates:!candidates in
            if not (List.mem src !candidates) then
              invalid_arg "Engine.run: arbiter chose a non-candidate";
            Some (nbr_slot nbrs src)
          end
  in
  (* Hand [msg] (sent by [src]) to [dst]'s incoming ring. [record_tx]
     additionally counts the transmission: the fault-free send path
     folds its transmit note in here because [slot] is exactly the
     receiver-row CSR index Metrics wants — the fault path records
     transmits itself (before the fault decision) and passes [false]. *)
  let enqueue record_tx t src dst msg =
    let slot = inq_off.(dst) + nbr_slot nbrs_of.(dst) src in
    in_push slot msg;
    pending.(dst) <- pending.(dst) + 1;
    if Bytes.unsafe_get on_recv_list dst = '\000' then begin
      Bytes.unsafe_set on_recv_list dst '\001';
      Vec.push receivers dst
    end;
    incr queued_total;
    let backlog = Array.unsafe_get inq_len slot in
    if backlog > !max_backlog then max_backlog := backlog;
    (match metrics with
    | Some m ->
        if record_tx then Metrics.note_transmit_at m ~slot ~src ~round:t;
        Metrics.note_backlog m ~node:dst ~backlog
    | None -> ());
    match telemetry with
    | Some tl ->
        if record_tx then Telemetry.note_send tl ~round:t;
        Telemetry.note_backlog tl ~round:t ~backlog
    | None -> ()
  in
  (* Dynamic-topology tests, compiled to constant [false] when no
     schedule is attached so the faults-only path pays nothing new. *)
  let node_down =
    match dynamic with
    | None -> fun _ ~round:_ -> false
    | Some dr ->
        let s = Dynamic.sched dr in
        fun node ~round -> not (Dynamic.node_up s ~round ~node)
  in
  let link_severed =
    match dynamic with
    | None -> fun ~src:_ ~dst:_ ~round:_ -> false
    | Some dr ->
        let s = Dynamic.sched dr in
        fun ~src ~dst ~round -> not (Dynamic.link_up s ~round ~u:src ~v:dst)
  in
  (* Same, or discard the message if the receiver is down — crashed by
     the fault plan, or churned out by the dynamic schedule. *)
  let note_tel_drop t =
    match telemetry with
    | Some tl -> Telemetry.note_drop tl ~round:t
    | None -> ()
  in
  let enqueue_faulty fr t src dst msg =
    if Faults.crashed fr ~node:dst ~round:t then begin
      Faults.note_crash_drop fr;
      note_tel_drop t;
      match metrics with
      | Some m -> Metrics.note_crash_drop m ~dst
      | None -> ()
    end
    else if node_down dst ~round:t then begin
      (match dynamic with Some dr -> Dynamic.note_node_drop dr | None -> ());
      note_tel_drop t;
      match metrics with
      | Some m -> Metrics.note_crash_drop m ~dst
      | None -> ()
    end
    else enqueue false t src dst msg
  in
  let round = ref 0 in
  let last_active = ref 0 in
  let halted = ref false in
  let raise_round_limit () =
    let loads = Array.make n 0 in
    for v = 0 to n - 1 do
      loads.(v) <- pending.(v) + out_len.(v)
    done;
    let rec drain () =
      match Heap.pop held with
      | Some (_, (_, dst, _)) ->
          loads.(dst) <- loads.(dst) + 1;
          drain ()
      | None -> ()
    in
    drain ();
    raise
      (Round_limit_exceeded
         {
           limit = config.max_rounds;
           outstanding = !outstanding_sends;
           queued = !queued_total;
           held = !held_count;
           busiest = top_loaded loads;
         })
  in
  (* Fault-delayed messages whose spike has elapsed join the receiver
     queues ahead of round [t]'s fresh sends. *)
  let rec flush_held fr t =
    match Heap.peek held with
    | Some ((due, _), (src, dst, msg)) when due <= t ->
        ignore (Heap.pop held);
        decr held_count;
        last_active := t;
        enqueue_faulty fr t src dst msg;
        flush_held fr t
    | _ -> ()
  in
  (* Send phase: drain each active outbox at [send_capacity]/round.
     Nodes whose outbox empties leave the worklist; the rest are
     compacted to the front (order preserved, so no re-sort needed for
     the survivors — fresh sends land behind them and the next round's
     sort is cheap). *)
  let rec drain_free v t budget =
    if budget > 0 && out_len.(v) > 0 then begin
      let head = Array.unsafe_get out_head v in
      let ddata = Array.unsafe_get out_dst v in
      let dst = Array.unsafe_get ddata head in
      let msg = Array.unsafe_get (Array.unsafe_get out_msg v) head in
      Array.unsafe_set out_head v ((head + 1) land (Array.length ddata - 1));
      Array.unsafe_set out_len v (Array.unsafe_get out_len v - 1);
      decr outstanding_sends;
      last_active := t;
      enqueue true t v dst msg;
      drain_free v t (budget - 1)
    end
  in
  let send_phase_free t =
    Vec.sort senders;
    let m = Vec.length senders in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get senders i in
      drain_free v t send_cap;
      if out_len.(v) = 0 then Bytes.unsafe_set on_send_list v '\000'
      else begin
        Vec.set senders !w v;
        incr w
      end
    done;
    Vec.truncate senders !w
  in
  let rec drain_faulty fr v t budget =
    if budget > 0 && out_len.(v) > 0 then begin
      let head = Array.unsafe_get out_head v in
      let ddata = Array.unsafe_get out_dst v in
      let dst = Array.unsafe_get ddata head in
      let msg = Array.unsafe_get (Array.unsafe_get out_msg v) head in
      Array.unsafe_set out_head v ((head + 1) land (Array.length ddata - 1));
      Array.unsafe_set out_len v (Array.unsafe_get out_len v - 1);
      decr outstanding_sends;
      last_active := t;
      (match metrics with
      | Some m -> Metrics.note_transmit m ~src:v ~dst ~round:t
      | None -> ());
      (match telemetry with
      | Some tl -> Telemetry.note_send tl ~round:t
      | None -> ());
      if link_severed ~src:v ~dst ~round:t then begin
        (* A transmission over a down link is lost at the sender's end;
           the fault plan's decision stream is not consumed for it. *)
        (match dynamic with Some dr -> Dynamic.note_link_drop dr | None -> ());
        note_tel_drop t;
        match metrics with
        | Some m -> Metrics.note_drop m ~src:v ~dst
        | None -> ()
      end
      else
        (match Faults.decide fr ~src:v ~dst ~round:t with
      | Faults.Deliver -> enqueue_faulty fr t v dst msg
      | Faults.Drop ->
          note_tel_drop t;
          (match metrics with
          | Some m -> Metrics.note_drop m ~src:v ~dst
          | None -> ())
      | Faults.Duplicate ->
          (match metrics with
          | Some m -> Metrics.note_duplicate m ~src:v ~dst
          | None -> ());
          enqueue_faulty fr t v dst msg;
          enqueue_faulty fr t v dst msg
      | Faults.Delay d ->
          (match metrics with
          | Some m -> Metrics.note_delay m ~src:v ~dst
          | None -> ());
          incr held_seq;
          incr held_count;
          Heap.push held (t + d, !held_seq) (v, dst, msg));
      drain_faulty fr v t (budget - 1)
    end
  in
  let send_phase_faulty fr t =
    Vec.sort senders;
    let m = Vec.length senders in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get senders i in
      if Faults.crashed fr ~node:v ~round:t || node_down v ~round:t then begin
        (* A crashed or churned-out sender keeps its outbox and stays
           on the list. *)
        Vec.set senders !w v;
        incr w
      end
      else begin
        drain_faulty fr v t send_cap;
        if out_len.(v) = 0 then Bytes.unsafe_set on_send_list v '\000'
        else begin
          Vec.set senders !w v;
          incr w
        end
      end
    done;
    Vec.truncate senders !w
  in
  (* Receive phase: admit [receive_capacity] messages per active
     receiver, via the arbiter. List membership invariant: a node is on
     [receivers] iff pending > 0. *)
  let rec recv_budget t v budget =
    if budget > 0 then
      match pick t v with
      | None -> ()
      | Some qi ->
          let src = nbrs_of.(v).(qi) in
          let slot = inq_off.(v) + qi in
          let msg = in_pop slot in
          pending.(v) <- pending.(v) - 1;
          decr queued_total;
          incr messages;
          last_active := t;
          (match metrics with
          | Some m -> Metrics.note_deliver_at m ~slot ~dst:v ~round:t
          | None -> ());
          (match telemetry with
          | Some tl -> Telemetry.note_deliver tl ~round:t
          | None -> ());
          if has_observer then observer.on_deliver ~round:t ~src ~dst:v;
          let s, actions =
            protocol.on_receive ~round:t ~node:v ~src msg states.(v)
          in
          states.(v) <- s;
          apply_actions v t actions;
          recv_budget t v (budget - 1)
  in
  let recv_node t v = recv_budget t v (min recv_cap pending.(v)) in
  let recv_phase_free t =
    Vec.sort receivers;
    let m = Vec.length receivers in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get receivers i in
      recv_node t v;
      if pending.(v) = 0 then Bytes.unsafe_set on_recv_list v '\000'
      else begin
        Vec.set receivers !w v;
        incr w
      end
    done;
    Vec.truncate receivers !w
  in
  let recv_phase_faulty fr t =
    Vec.sort receivers;
    let m = Vec.length receivers in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get receivers i in
      (* A crashed or churned-out receiver keeps its queued messages
         for later. *)
      if not (Faults.crashed fr ~node:v ~round:t || node_down v ~round:t)
      then recv_node t v;
      if pending.(v) = 0 then Bytes.unsafe_set on_recv_list v '\000'
      else begin
        Vec.set receivers !w v;
        incr w
      end
    done;
    Vec.truncate receivers !w
  in
  (* Tick phase: work issued at time [t] enters the network in round
     [t + 1], mirroring the one-shot requests issued at time 0. Ticks
     fire on every node, so a ticking protocol is inherently O(n)/round
     — the active sets only help its send/receive phases. *)
  let tick_phase_free tick t =
    for v = 0 to n - 1 do
      let s, actions = tick ~round:t ~node:v states.(v) in
      states.(v) <- s;
      apply_actions v t actions
    done
  in
  let tick_phase_faulty fr tick t =
    for v = 0 to n - 1 do
      if not (Faults.crashed fr ~node:v ~round:t || node_down v ~round:t)
      then begin
        let s, actions = tick ~round:t ~node:v states.(v) in
        states.(v) <- s;
        apply_actions v t actions
      end
    done
  in
  let round_end t =
    (match telemetry with
    | Some tl ->
        let in_flight = !outstanding_sends + !queued_total + !held_count in
        Telemetry.note_in_flight tl ~round:t ~in_flight
    | None -> ());
    if has_observer then begin
      let in_flight = !outstanding_sends + !queued_total + !held_count in
      match observer.on_round_end ~round:t ~in_flight with
      | `Continue -> ()
      | `Halt -> halted := true
    end
  in
  (match (faults, dynamic) with
  | None, None ->
      while
        (not !halted)
        && (!outstanding_sends > 0 || !queued_total > 0
           || !round < config.min_rounds || keep_alive ())
      do
        incr round;
        if !round > config.max_rounds then raise_round_limit ();
        if can_fast_forward && !outstanding_sends = 0 && !queued_total = 0
        then
          (* Quiescent and unobservable: only [min_rounds] is keeping
             the run alive (keep_alive is the always-false default).
             Jump straight there; the cap keeps the limit check above
             authoritative when min_rounds > max_rounds. *)
          round := max !round (min config.min_rounds config.max_rounds)
        else begin
          let t = !round in
          send_phase_free t;
          recv_phase_free t;
          (match protocol.on_tick with
          | None -> ()
          | Some tick -> tick_phase_free tick t);
          round_end t
        end
      done
  | _ ->
      (* A dynamic schedule without a fault plan runs the faulty loop
         against the no-op plan — [Faults.none] never crashes a node
         and always decides [Deliver], so the only behavioural
         difference from the free loop is the schedule itself. *)
      let fr =
        match faults with Some fr -> fr | None -> Faults.start Faults.none
      in
      while
        (not !halted)
        && (!outstanding_sends > 0 || !queued_total > 0 || !held_count > 0
           || !round < config.min_rounds || keep_alive ())
      do
        incr round;
        if !round > config.max_rounds then raise_round_limit ();
        let t = !round in
        let jump_to =
          if can_fast_forward && !outstanding_sends = 0 && !queued_total = 0
          then
            match Heap.peek held with
            | None -> Some (min config.min_rounds config.max_rounds)
            | Some ((due, _), _) when due > t ->
                (* Wake exactly at the held message's due round. *)
                Some (min (due - 1) config.max_rounds)
            | Some _ -> None
          else None
        in
        match jump_to with
        | Some target -> round := max t target
        | None ->
            flush_held fr t;
            send_phase_faulty fr t;
            recv_phase_faulty fr t;
            (match protocol.on_tick with
            | None -> ()
            | Some tick -> tick_phase_faulty fr tick t);
            round_end t
      done);
  (* Completions were pushed in chronological order, which for most
     protocols (ascending node order within each phase) is already
     strictly (round, node)-sorted — detect that and skip the sort.
     Any tie or inversion falls back to the reference engine's exact
     assembly (prepend-then-stable-sort), whose tie order is reverse
     insertion order. *)
  let comp = !comp_data in
  let len = !comp_len in
  let sorted = ref true in
  for i = 1 to len - 1 do
    let a = comp.(i - 1) and b = comp.(i) in
    if a.round > b.round || (a.round = b.round && a.node >= b.node) then
      sorted := false
  done;
  let completions =
    if !sorted then begin
      let acc = ref [] in
      for i = len - 1 downto 0 do
        acc := comp.(i) :: !acc
      done;
      !acc
    end
    else begin
      let completion_list = ref [] in
      for i = 0 to len - 1 do
        completion_list := comp.(i) :: !completion_list
      done;
      List.sort
        (fun (a : _ completion) (b : _ completion) ->
          match compare a.round b.round with
          | 0 -> compare a.node b.node
          | c -> c)
        !completion_list
    end
  in
  {
    completions;
    rounds = !last_active;
    messages = !messages;
    max_link_backlog = !max_backlog;
    expansion = config.receive_capacity;
  }
