(** Causal operation spans: the per-operation view of a run.

    The paper's cost measure (Section 2.2) charges each operation its
    {e individual} delay — the rounds from injection to completion —
    and the Ω(n²)/O(n) separation between counting and queuing is a
    statement about how those delays distribute. A [span] reconstructs
    that per-operation story from a run: the round the operation was
    injected, every message hop it caused (with the queueing wait each
    hop suffered on its FIFO link), and the round it completed.

    Like {!Trace}, spans are {e protocol-level} instrumentation — the
    engine stays oblivious. {!instrument} wraps a protocol; the caller
    says which operation (if any) a message or completion belongs to
    via [op_of_msg] / [op_of_completion], and the wrapper stitches
    sends to deliveries per directed link in FIFO order (links are
    FIFO, so the k-th delivery of an operation's messages on a link is
    the k-th send). Protocols whose messages genuinely serve no single
    operation (e.g. the sweep protocol's shared token) return [None]
    from [op_of_msg] and get spans with injection and completion only.

    Operation ids must be unique per run; for the one-shot scenarios
    every node issues exactly one operation, so the origin node id
    serves. *)

type hop = {
  h_src : int;
  h_dst : int;
  queued_round : int;
      (** round in which the protocol queued the send ([0] = at issue
          time). The message enters the network the following round. *)
  delivered_round : int;
      (** round in which the receiver's protocol processed it. *)
}

type t = {
  op : int;
  inject_round : int;
      (** round of the first action attributed to the operation. *)
  hops : hop list;  (** in delivery order. *)
  completion_round : int option;
      (** [None] if the run ended (crash, drop, halt) before the
          operation completed. *)
}

val hop_wait : hop -> int
(** [delivered_round - queued_round - 1]: the rounds the message spent
    queued behind link contention (or parked by a fault delay) beyond
    the model's one-round transit. 0 on an uncontended hop. *)

val delay : t -> int option
(** [completion_round - inject_round], the operation's delay in the
    paper's sense; [None] for an incomplete span. *)

val instrument :
  ?injects:(int * int) list ->
  op_of_msg:('m -> int option) ->
  op_of_completion:('r -> int option) ->
  ('s, 'm, 'r) Engine.protocol ->
  ('s, 'm, 'r) Engine.protocol * (unit -> t list)
(** [instrument ~op_of_msg ~op_of_completion p] is [(p', spans)]:
    [p'] behaves exactly like [p]; [spans ()] returns the spans
    reconstructed so far, in operation-id order, hops chronological.

    [injects] pre-registers [(op, round)] pairs as known injection
    times — one-shot runners pass [(v, 0)] per requester. Without it
    an operation's injection is inferred as the round of the first
    action attributed to it, which is correct for protocols that send
    (or complete) at issue time but degenerates for ops whose only
    attributed event is a late completion (e.g. the sweep, whose
    shared token maps to no single op). Pre-registered ops also
    surface as incomplete spans when a faulty run strands them.

    A fault-duplicated copy has no matching send; its hop is recorded
    with [queued_round = delivered_round - 1] (zero wait). The
    recorder is shared mutable state — instrument afresh per run. *)

val to_jsonl : t list -> string
(** One [{"type":"span", …}] object per line: fields [op], [inject],
    [complete] (absent on incomplete spans), [delay] (likewise), and
    [hops] — an array of [{"src","dst","queued","delivered","wait"}].
    Each line parses with {!Countq_util.Json.of_string}. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: op, inject → completion, hop count, worst
    hop wait. *)
