(* Protocol instrumentation and ASCII timelines. See trace.mli. *)

type event =
  | Received of { round : int; node : int; src : int }
  | Queued_send of { round : int; node : int; dst : int }
  | Completed of { round : int; node : int }

let event_round = function
  | Received { round; _ } | Queued_send { round; _ } | Completed { round; _ } ->
      round

let event_node = function
  | Received { node; _ } | Queued_send { node; _ } | Completed { node; _ } ->
      node

let instrument (p : _ Engine.protocol) =
  let log = ref [] in
  let record e = log := e :: !log in
  let record_actions round node actions =
    List.iter
      (fun action ->
        match action with
        | Engine.Send (dst, _) -> record (Queued_send { round; node; dst })
        | Engine.Complete _ -> record (Completed { round; node }))
      actions
  in
  let p' =
    {
      p with
      Engine.on_start =
        (fun ~node s ->
          let s, actions = p.Engine.on_start ~node s in
          record_actions 0 node actions;
          (s, actions));
      on_receive =
        (fun ~round ~node ~src msg s ->
          record (Received { round; node; src });
          let s, actions = p.Engine.on_receive ~round ~node ~src msg s in
          record_actions round node actions;
          (s, actions));
      on_tick =
        Option.map
          (fun tick ~round ~node s ->
            let s, actions = tick ~round ~node s in
            record_actions round node actions;
            (s, actions))
          p.Engine.on_tick;
    }
  in
  (p', fun () -> List.rev !log)

let render ~n events =
  let horizon =
    List.fold_left (fun acc e -> max acc (event_round e)) 0 events
  in
  let grid = Array.make_matrix n (horizon + 1) '.' in
  let upgrade cell c =
    (* priority: * > + > R > s > . *)
    let rank = function '*' -> 4 | '+' -> 3 | 'R' -> 2 | 's' -> 1 | _ -> 0 in
    if rank c > rank cell then c else cell
  in
  List.iter
    (fun e ->
      let v = event_node e and t = event_round e in
      let c =
        match e with
        | Completed _ -> '*'
        | Received _ -> if grid.(v).(t) = 's' then '+' else 'R'
        | Queued_send _ -> if grid.(v).(t) = 'R' then '+' else 's'
      in
      grid.(v).(t) <- upgrade grid.(v).(t) c)
    events;
  let buf = Buffer.create ((n + 2) * (horizon + 12)) in
  Buffer.add_string buf "      round 0";
  for t = 1 to horizon do
    Buffer.add_char buf (if t mod 10 = 0 then Char.chr (48 + (t / 10 mod 10)) else ' ')
  done;
  Buffer.add_char buf '\n';
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "node %3d  " v);
    for t = 0 to horizon do
      Buffer.add_char buf grid.(v).(t)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let to_jsonl events =
  let module J = Countq_util.Json in
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let obj =
        match e with
        | Received { round; node; src } ->
            J.Obj
              [ ("type", J.Str "recv"); ("round", J.Int round);
                ("node", J.Int node); ("src", J.Int src) ]
        | Queued_send { round; node; dst } ->
            J.Obj
              [ ("type", J.Str "send"); ("round", J.Int round);
                ("node", J.Int node); ("dst", J.Int dst) ]
        | Completed { round; node } ->
            J.Obj
              [ ("type", J.Str "complete"); ("round", J.Int round);
                ("node", J.Int node) ]
      in
      Buffer.add_string buf (J.to_string obj);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let of_jsonl text =
  let module J = Countq_util.Json in
  let parse_line lineno line =
    let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    match J.of_string line with
    | Error e -> fail e
    | Ok j -> (
        let int k =
          match Option.bind (J.member k j) J.to_int with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "line %d: missing int %S" lineno k)
        in
        let ( let* ) = Result.bind in
        match Option.bind (J.member "type" j) J.to_str with
        | Some "recv" ->
            let* round = int "round" in
            let* node = int "node" in
            let* src = int "src" in
            Ok (Received { round; node; src })
        | Some "send" ->
            let* round = int "round" in
            let* node = int "node" in
            let* dst = int "dst" in
            Ok (Queued_send { round; node; dst })
        | Some "complete" ->
            let* round = int "round" in
            let* node = int "node" in
            Ok (Completed { round; node })
        | Some other -> fail (Printf.sprintf "unknown event type %S" other)
        | None -> fail "missing \"type\" field")
  in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        if String.trim line = "" then go acc (lineno + 1) rest
        else (
          match parse_line lineno line with
          | Ok e -> go (e :: acc) (lineno + 1) rest
          | Error _ as e -> e)
  in
  go [] 1 (String.split_on_char '\n' text)

let pp_event ppf = function
  | Received { round; node; src } ->
      Format.fprintf ppf "t=%d node %d received from %d" round node src
  | Queued_send { round; node; dst } ->
      Format.fprintf ppf "t=%d node %d queued a send to %d" round node dst
  | Completed { round; node } ->
      Format.fprintf ppf "t=%d node %d completed" round node
