(* Adversarial dynamic-topology schedules. See dynamic.mli. *)

module Graph = Countq_topology.Graph
module Rng = Countq_util.Rng

type schedule = {
  s_label : string;
  s_base : Graph.t;
  s_node_up : round:int -> node:int -> bool;
  s_link_up : round:int -> u:int -> v:int -> bool;
}

let label s = s.s_label
let base s = s.s_base

(* The schedule is defined for rounds >= 1 (round 0 issues the one-shot
   requests; no communication happens in it). *)
let clamp round = if round < 1 then 1 else round

let node_up s ~round ~node = s.s_node_up ~round:(clamp round) ~node

let link_up s ~round ~u ~v =
  let u, v = if u <= v then (u, v) else (v, u) in
  s.s_link_up ~round:(clamp round) ~u ~v

let usable s ~round ~u ~v =
  link_up s ~round ~u ~v
  && node_up s ~round ~node:u
  && node_up s ~round ~node:v

let all_up_node ~round:_ ~node:_ = true
let all_up_link ~round:_ ~u:_ ~v:_ = true

let identity g =
  { s_label = "identity"; s_base = g; s_node_up = all_up_node; s_link_up = all_up_link }

let of_fun ~label ?(node_up = all_up_node) ?(link_up = all_up_link) g =
  let link_up ~round ~u ~v =
    let u, v = if u <= v then (u, v) else (v, u) in
    link_up ~round ~u ~v
  in
  { s_label = label; s_base = g; s_node_up = node_up; s_link_up = link_up }

(* Per-epoch decisions are memoised so every query within an epoch sees
   one consistent sample; the per-epoch generator is derived from
   (seed, epoch) alone, so queries in any order replay identically. *)
let epoch_rng seed epoch =
  Rng.create Int64.(add seed (mul (of_int (epoch + 1)) 0x9E3779B97F4A7C15L))

let memo_epochs compute =
  let cache = Hashtbl.create 16 in
  fun epoch ->
    match Hashtbl.find_opt cache epoch with
    | Some x -> x
    | None ->
        let x = compute epoch in
        Hashtbl.add cache epoch x;
        x

let check_rate rate name =
  if rate < 0. || rate > 1. then
    invalid_arg (Printf.sprintf "Dynamic.%s: rate must be in [0, 1]" name)

let check_epoch epoch name =
  if epoch < 1 then
    invalid_arg (Printf.sprintf "Dynamic.%s: epoch must be >= 1" name)

let link_flaps ~seed ~rate ?(epoch = 8) ?(protect = []) g =
  check_rate rate "link_flaps";
  check_epoch epoch "link_flaps";
  let edges = Graph.edges g in
  let protected v = List.mem v protect in
  let down_of = memo_epochs (fun e ->
      let rng = epoch_rng seed e in
      let down = Hashtbl.create 16 in
      List.iter
        (fun (u, v) ->
          (* One draw per edge per epoch, protected or not, so the
             stream position is independent of [protect]. *)
          let flip = Rng.float rng < rate in
          if flip && not (protected u || protected v) then
            Hashtbl.replace down (u, v) ())
        edges;
      down)
  in
  {
    s_label = Printf.sprintf "flaps(rate=%.2f,epoch=%d,seed=%Ld)" rate epoch seed;
    s_base = g;
    s_node_up = all_up_node;
    s_link_up = (fun ~round ~u ~v -> not (Hashtbl.mem (down_of ((round - 1) / epoch)) (u, v)));
  }

let node_churn ~seed ~rate ?(epoch = 8) ?(protect = []) g =
  check_rate rate "node_churn";
  check_epoch epoch "node_churn";
  let n = Graph.n g in
  let protected = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Dynamic.node_churn: protect out of range";
      protected.(v) <- true)
    protect;
  let down_of = memo_epochs (fun e ->
      let rng = epoch_rng seed e in
      let down = Array.make n false in
      for v = 0 to n - 1 do
        let flip = Rng.float rng < rate in
        if flip && not protected.(v) then down.(v) <- true
      done;
      down)
  in
  {
    s_label = Printf.sprintf "churn(rate=%.2f,epoch=%d,seed=%Ld)" rate epoch seed;
    s_base = g;
    s_node_up = (fun ~round ~node -> not (down_of ((round - 1) / epoch)).(node));
    s_link_up = all_up_link;
  }

(* Random spanning tree (forest on a disconnected base): Kruskal over a
   shuffled edge list with path-compressing union-find. *)
let random_spanning_tree rng g =
  let n = Graph.n g in
  let edges = Array.of_list (Graph.edges g) in
  Rng.shuffle rng edges;
  let parent = Array.init n Fun.id in
  let rec find x =
    if parent.(x) = x then x
    else begin
      let r = find parent.(x) in
      parent.(x) <- r;
      r
    end
  in
  let keep = Hashtbl.create (2 * n) in
  Array.iter
    (fun (u, v) ->
      let ru = find u and rv = find v in
      if ru <> rv then begin
        parent.(ru) <- rv;
        Hashtbl.replace keep (u, v) ()
      end)
    edges;
  keep

let windowed_up_set ~label ~seed ~window g extras =
  check_epoch window "t_interval";
  let up_of = memo_epochs (fun w ->
      let rng = epoch_rng seed w in
      let up = random_spanning_tree rng g in
      extras rng up;
      up)
  in
  {
    s_label = label;
    s_base = g;
    s_node_up = all_up_node;
    s_link_up = (fun ~round ~u ~v -> Hashtbl.mem (up_of ((round - 1) / window)) (u, v));
  }

let t_interval ~seed ~t g =
  windowed_up_set
    ~label:(Printf.sprintf "t-interval(T=%d,seed=%Ld)" t seed)
    ~seed ~window:t g
    (fun _rng _up -> ())

let periodic_rewire ~seed ~period ?(keep = 0.5) g =
  check_rate keep "periodic_rewire";
  let edges = Graph.edges g in
  windowed_up_set
    ~label:(Printf.sprintf "rewire(period=%d,keep=%.2f,seed=%Ld)" period keep seed)
    ~seed ~window:period g
    (fun rng up ->
      List.iter
        (fun (u, v) ->
          (* One draw per edge, tree or not, for a stable stream. *)
          let flip = Rng.float rng < keep in
          if flip && not (Hashtbl.mem up (u, v)) then Hashtbl.replace up (u, v) ())
        edges)

let tree_attack ?(period = 8) ~tree g =
  check_epoch period "tree_attack";
  let targets = Array.of_list (Graph.edges tree) in
  let k = Array.length targets in
  {
    s_label = Printf.sprintf "tree-attack(period=%d)" period;
    s_base = g;
    s_node_up = all_up_node;
    s_link_up =
      (fun ~round ~u ~v ->
        k = 0 || targets.((round - 1) / period mod k) <> (u, v));
  }

let partition ~at ~island g =
  let n = Graph.n g in
  let inside = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Dynamic.partition: island out of range";
      inside.(v) <- true)
    island;
  let islanders = List.sort_uniq compare island in
  {
    s_label =
      Printf.sprintf "partition(at=%d,island={%s})" at
        (String.concat "," (List.map string_of_int islanders));
    s_base = g;
    s_node_up = all_up_node;
    s_link_up = (fun ~round ~u ~v -> round < at || inside.(u) = inside.(v));
  }

let up_neighbors s ~round v =
  if not (node_up s ~round ~node:v) then []
  else
    Array.fold_right
      (fun w acc -> if usable s ~round ~u:v ~v:w then w :: acc else acc)
      (Graph.neighbors (base s) v)
      []

let reachable s ~round ~from =
  let n = Graph.n (base s) in
  let seen = Array.make n false in
  seen.(from) <- true;
  let q = Queue.create () in
  Queue.push from q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.push w q
        end)
      (up_neighbors s ~round v)
  done;
  seen

let next_hop s ~round ~src ~dst =
  if src = dst then None
  else begin
    let n = Graph.n (base s) in
    let prev = Array.make n (-1) in
    prev.(src) <- src;
    let q = Queue.create () in
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun w ->
          if prev.(w) < 0 then begin
            prev.(w) <- v;
            if w = dst then found := true else Queue.push w q
          end)
        (up_neighbors s ~round v)
    done;
    if not !found then None
    else begin
      (* Walk back from [dst] to the node whose predecessor is [src]. *)
      let rec back v = if prev.(v) = src then v else back prev.(v) in
      Some (back dst)
    end
  end

let describe_cut s ~round ~from =
  let seen = reachable s ~round ~from in
  let collect want =
    let acc = ref [] in
    for v = Array.length seen - 1 downto 0 do
      if seen.(v) = want then acc := v :: !acc
    done;
    !acc
  in
  let fmt vs =
    let vs = List.map string_of_int vs in
    let shown, more =
      let rec take k = function
        | [] -> ([], 0)
        | _ :: _ as l when k = 0 -> ([], List.length l)
        | x :: rest ->
            let taken, dropped = take (k - 1) rest in
            (x :: taken, dropped)
      in
      take 16 vs
    in
    String.concat "," shown ^ if more > 0 then Printf.sprintf ",+%d" more else ""
  in
  match collect false with
  | [] -> Printf.sprintf "node %d reaches the whole network in round %d" from round
  | cut ->
      Printf.sprintf "node %d reaches {%s} but is cut off from {%s} in round %d"
        from (fmt (collect true)) (fmt cut) round

type stats = { link_drops : int; node_drops : int }

let no_stats = { link_drops = 0; node_drops = 0 }

type runtime = {
  r_sched : schedule;
  mutable r_link_drops : int;
  mutable r_node_drops : int;
}

let start s = { r_sched = s; r_link_drops = 0; r_node_drops = 0 }
let sched r = r.r_sched
let note_link_drop r = r.r_link_drops <- r.r_link_drops + 1
let note_node_drop r = r.r_node_drops <- r.r_node_drops + 1
let stats r = { link_drops = r.r_link_drops; node_drops = r.r_node_drops }

let pp_stats ppf s =
  Format.fprintf ppf "%d link drops, %d node drops" s.link_drops s.node_drops
