(** Deterministic fault injection for both simulation engines.

    The paper's model (Section 2.1) assumes perfectly reliable FIFO
    links; every theorem-shape check in the experiment suite is
    therefore validated on a fault-free substrate. This module supplies
    the misbehaving substrate: a {!plan} describes, ahead of time and as
    a pure function of its seed, which transmissions are dropped,
    duplicated or delayed and which nodes crash (and possibly recover)
    at which rounds. Both {!Engine.run} and {!Async.run} accept a
    started plan through their [?faults] argument; with no plan — or
    with {!none} — their behaviour is bit-identical to the fault-free
    engines (a regression test pins this down).

    Determinism contract: a plan consults only its own seeded generator
    and the per-run transmission counter, so the same (topology,
    protocol, plan) triple always yields the same execution. Plans are
    replayable across engines, though the transmission order (and hence
    which concrete message a probabilistic fault hits) naturally
    differs between the synchronous and asynchronous engines. *)

type decision =
  | Deliver  (** transmit normally. *)
  | Drop  (** the message vanishes. *)
  | Duplicate  (** the receiver gets two copies. *)
  | Delay of int
      (** delivery is postponed by the given number of rounds (>= 1);
          later traffic on the same link may overtake it, so a delay
          spike also injects reordering into the synchronous engine. *)

type crash = {
  node : int;
  at_round : int;  (** first round the node is down. *)
  recover_at : int option;
      (** first round it is back up; [None] = crashed forever. While
          down a node neither sends, receives nor ticks; messages
          addressed to it are dropped (its local state survives). *)
}

type plan
(** A named, immutable fault schedule. *)

val none : plan
(** The empty plan: every decision is [Deliver], nobody crashes. *)

val is_none : plan -> bool
val label : plan -> string
val crashes : plan -> crash list

val random :
  label:string ->
  seed:int64 ->
  ?drop:float ->
  ?duplicate:float ->
  ?delay:float ->
  ?delay_max:int ->
  ?crashes:crash list ->
  unit ->
  plan
(** Independent per-transmission faults: with probability [drop] the
    message is lost, else with probability [duplicate] it is doubled,
    else with probability [delay] it is postponed by a uniform spike in
    [1 .. delay_max] (default 5). All probabilities default to 0 and
    must lie in [0, 1]. Driven by a splitmix64 stream from [seed]: the
    plan is a pure function of its seed.
    @raise Invalid_argument on a probability outside [0, 1] or
    [delay_max < 1]. *)

val drop_nth : ?label:string -> int -> plan
(** [drop_nth i] drops exactly the [i]-th transmission of the run
    (0-based) and delivers everything else — the sharpest single-fault
    probe: one lost message, otherwise a perfect network. *)

val dup_nth : ?label:string -> int -> plan
(** Duplicate exactly the [i]-th transmission. *)

val delay_nth : ?label:string -> by:int -> int -> plan
(** Postpone exactly the [i]-th transmission by [by] rounds. *)

val crash_only : label:string -> crash list -> plan
(** Perfect links, but the given nodes crash. *)

val oracle :
  label:string ->
  ?crashes:crash list ->
  (src:int -> dst:int -> round:int -> index:int -> decision) ->
  plan
(** Fully adversarial plan: the function sees the link, the round and
    the global 0-based transmission index and returns the decision. It
    must be pure — the engines may be re-run for baselines. *)

val named : (string * plan) list
(** The registry the CLI exposes ([countq faults --plan NAME]):
    [none], [drop-first], [lossy] (5% drops), [very-lossy] (20%),
    [dup] (10% duplicates), [jitter] (30% delay spikes up to 5),
    [chaos] (drops + duplicates + jitter), [crash-root] (node 0 dies at
    round 3) and [crash-restart] (node 0 down for rounds 3–39). *)

val find : string -> plan option
(** Case-insensitive lookup in {!named}. *)

(** {1 Runtime} *)

type stats = {
  transmissions : int;  (** decisions taken (crash drops excluded). *)
  dropped : int;
  duplicated : int;
  delayed : int;
  crash_dropped : int;
      (** messages discarded because the receiver was down. *)
}

val no_stats : stats

type runtime
(** Mutable per-run state: the plan's RNG stream position, the
    transmission counter and the tallies. Create one per execution. *)

val start : plan -> runtime

val plan : runtime -> plan

val decide : runtime -> src:int -> dst:int -> round:int -> decision
(** Consume the next transmission decision. Called by the engines once
    per message leaving a sender (duplicates injected by the plan do
    not themselves re-enter [decide]). *)

val crashed : runtime -> node:int -> round:int -> bool

val note_crash_drop : runtime -> unit
(** Engines record a message discarded at a crashed receiver. *)

val stats : runtime -> stats

val pp_stats : Format.formatter -> stats -> unit
