(** Asynchronous (discrete-event) execution of the same protocols.

    Section 2.1 notes that the paper's lower bounds carry over to the
    general asynchronous model, where link delays have no fixed bound;
    upper bounds degrade because an adversary can sequentialise
    everything. This engine runs the very same {!Engine.protocol}
    values under per-message link delays instead of lockstep rounds,
    so safety properties (total orders, exact count sets) can be
    checked — and delay sensitivity measured — far outside the
    synchronous model the bounds were proved in.

    Model: each message sent on a link receives a delay from the
    {!delay_model}; links stay FIFO (a message never overtakes an
    earlier one on the same link); each node still processes at most
    one message per time unit and emits at most one message per time
    unit (the Section 2.1 constraint, translated to event time). With
    [Constant 1] delays the timing rules coincide with the synchronous
    engine's; only tie-breaking among simultaneous arrivals differs
    (FIFO event order here, round-robin there), so delay {e totals} of
    contention-bound protocols match while individual interleavings may
    not — the test suite pins down both facts. *)

type delay_model =
  | Constant of int  (** every link delay is the given value (>= 1). *)
  | Uniform of { min : int; max : int; seed : int64 }
      (** i.i.d. integer delays in [[min, max]], deterministic in
          [seed]. *)
  | Per_message of (src:int -> dst:int -> send_time:int -> int)
      (** arbitrary (adversarial) delay oracle; result clamped to
          [>= 1]. *)

type 'r result = {
  completions : 'r Engine.completion list;
      (** [round] is the event time of completion. *)
  finish_time : int;  (** time of the last event. *)
  messages : int;
}

val run :
  graph:Countq_topology.Graph.t ->
  delay:delay_model ->
  ?wakeups:(int * int) list ->
  ?max_events:int ->
  ?faults:Faults.runtime ->
  ?metrics:Metrics.t ->
  protocol:('s, 'm, 'r) Engine.protocol ->
  unit ->
  'r result
(** [run ~graph ~delay ~protocol ()] executes to quiescence.
    [wakeups] is a list of [(time, node)] pairs: at each, the
    protocol's [on_tick] (if any) fires for that node — the
    asynchronous counterpart of the synchronous engine's per-round
    ticks, used for staggered arrivals. [max_events] (default 10M)
    guards against livelock.

    [faults] injects the same per-transmission decisions as the
    synchronous engine: fault rounds are read as event times, a Delay
    spike adds to the link delay {e before} the FIFO no-overtake clamp
    (so delays slow a link without reordering it), and arrivals at a
    crashed node are discarded. With no [faults] (or a started
    {!Faults.none}) the execution is identical to the fault-free
    engine's. Note the {!Reliable} retransmit layer is driven by
    per-round ticks and therefore only heals faults under the
    synchronous engine.

    [metrics] attaches the same passive {!Metrics} recorder the
    synchronous engines take; "rounds" in its busy tally are event
    times here, and no backlog is recorded (the event heap has no
    per-link queues).
    @raise Invalid_argument on a bad delay model or wakeups. *)
