(* Domain-sharded synchronous engine. See shard.mli.

   One run, several domains: nodes are split by a Partition; each shard
   owns its nodes' rows of the same flat state the active-set engine
   uses (states, CSR incoming rings, outbox rings, worklists) and runs
   the round phases on its own lane. Cross-shard messages are buffered
   per (sender shard, receiver shard) during the send phase and applied
   by the receiving shard after a barrier, sorted by (src, dst, seq) —
   per-link FIFO order is all the synchronous model can observe, so the
   result is bit-identical to Engine.run / Event_engine.run (pinned in
   test_shard.ml).

   Division of labour per executed round, fault-free:

     coordinator: loop bookkeeping, fast-forward, round-limit
     all lanes:   SEND   — drain own outboxes; local enqueues direct,
                           remote ones into transfer buffers
     barrier
     all lanes:   DELIVER — apply sorted incoming transfers, then
                            receive (arbiter, protocol), then
                            tick / injections for own nodes
     barrier
     coordinator: merge per-shard counter deltas, drain completions in
                  (phase, node) order, telemetry in-flight sample

   With ?faults or ?dynamic the SEND phase instead runs sequentially on
   the coordinator over the globally sorted sender list — the fault
   decision stream is one mutable sequence whose global transmission
   order is observable — and the coordinator precomputes this round's
   crash/churn verdict for every node the DELIVER phase will examine,
   so fault-plan and schedule queries are never issued concurrently.

   Observable-order bookkeeping that makes the merge exact:
   - metrics ownership: node v's transmit marks are recorded by v's
     owning shard (senders note transmits, receivers note backlogs and
     deliveries), so per-node busy counts live in exactly one per-shard
     recorder and Metrics.merge_into's sum is the sequential count;
   - telemetry is per-window sums and maxima, merged by absolute
     window index (Telemetry.merge_into);
   - completions are tagged (phase, node) per round and merged in that
     order, which is the sequential engine's chronological push order;
     the final assembly then reuses Engine.run's exact
     sorted-detect-or-reference-sort logic. *)

module Graph = Countq_topology.Graph
module Itopo = Countq_topology.Implicit
module Partition = Countq_topology.Partition
module Parallel = Countq_util.Parallel
module Heap = Countq_util.Heap
module Vec = Countq_util.Vec

let auto_shards () = max 1 (Domain.recommended_domain_count ())

(* Index of [u] in a sorted duplicate-free neighbour array, or -1. *)
let nbr_slot nbrs u =
  let lo = ref 0 and hi = ref (Array.length nbrs - 1) in
  let res = ref (-1) in
  while !res < 0 && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let x = Array.unsafe_get nbrs mid in
    if x = u then res := mid else if x < u then lo := mid + 1 else hi := mid - 1
  done;
  !res

(* Growable store; grow-on-push seeds fresh cells from the pushed
   element so polymorphic payloads need no dummy. *)
type 'a buf = { mutable data : 'a array; mutable len : int }

let buf () = { data = [||]; len = 0 }

let buf_push b x =
  if b.len = Array.length b.data then begin
    let d = Array.make (max 16 (2 * b.len)) x in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let jobs_quit = 0
let job_send = 1
let job_deliver = 2

(* Observer events buffered per shard during the parallel phases and
   replayed coordinator-side at the round barrier, merged in (phase,
   node) order — the same reconstruction the completion drain uses, so
   the callback stream is the sequential engines' exactly. *)
type 'r obs_ev = Obs_deliver of int (* src *) | Obs_complete of 'r

let run_core (type s m r) ?faults ?dynamic ?(observer = Engine.null_observer)
    ?metrics ?telemetry ?sink ?stats
    ~(injections : (s, m, r) Event_engine.injection array) ~halt_after
    ~(starters : int list option) ~(part : Partition.t)
    ~(pool : Parallel.pool option) ~n ~(neighbors : int -> int array)
    ~(config : Engine.config) ~(protocol : (s, m, r) Engine.protocol) () :
    r Engine.result =
  if config.receive_capacity < 1 || config.send_capacity < 1 then
    invalid_arg "Shard.run: capacities must be >= 1";
  if Array.length part.Partition.owner <> n then
    invalid_arg "Shard.run: partition does not cover the node set";
  let kshards = part.Partition.shards in
  let owner = part.Partition.owner in
  let send_cap = config.send_capacity in
  let recv_cap = config.receive_capacity in
  let ninj = Array.length injections in
  for i = 0 to ninj - 1 do
    let inj = injections.(i) in
    if inj.Event_engine.at < 1 then
      invalid_arg "Shard.run: injection rounds must be >= 1";
    if inj.Event_engine.node < 0 || inj.Event_engine.node >= n then
      invalid_arg "Shard.run: injection node out of range";
    if i > 0 then begin
      let p = injections.(i - 1) in
      if
        p.Event_engine.at > inj.Event_engine.at
        || (p.Event_engine.at = inj.Event_engine.at
           && p.Event_engine.node > inj.Event_engine.node)
      then invalid_arg "Shard.run: injections must be sorted by (round, node)"
    end
  done;
  let faulty = match (faults, dynamic) with None, None -> false | _ -> true in
  let fr =
    match faults with Some fr -> fr | None -> Faults.start Faults.none
  in
  let node_down =
    match dynamic with
    | None -> fun _ ~round:_ -> false
    | Some dr ->
        let sd = Dynamic.sched dr in
        fun node ~round -> not (Dynamic.node_up sd ~round ~node)
  in
  let link_severed =
    match dynamic with
    | None -> fun ~src:_ ~dst:_ ~round:_ -> false
    | Some dr ->
        let sd = Dynamic.sched dr in
        fun ~src ~dst ~round -> not (Dynamic.link_up sd ~round ~u:src ~v:dst)
  in
  (* ---------------- shared flat state (rows owned per shard) ------- *)
  let states = Array.init n protocol.initial_state in
  let nbrs_of = Array.init n neighbors in
  let inq_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    inq_off.(v + 1) <- inq_off.(v) + Array.length nbrs_of.(v)
  done;
  let inq_data : m array array = Array.make inq_off.(n) [||] in
  let inq_head = Array.make inq_off.(n) 0 in
  let inq_len = Array.make inq_off.(n) 0 in
  let out_dst = Array.make n [||] in
  let out_msg : m array array = Array.make n [||] in
  let out_head = Array.make n 0 in
  let out_len = Array.make n 0 in
  let rr_pointer = Array.make n 0 in
  let pending = Array.make n 0 in
  let on_send_list = Bytes.make n '\000' in
  let on_recv_list = Bytes.make n '\000' in
  (* Crash/churn verdicts for this round, coordinator-written before
     each guarded DELIVER phase ('\001' = blocked). *)
  let blocked = if faulty then Bytes.make n '\000' else Bytes.empty in
  let track_touched = stats <> None in
  let touched = if track_touched then Bytes.make n '\000' else Bytes.empty in
  (* With an explicit starter list (event-engine semantics), everyone
     else is started lazily at first touch, and their on_start must
     produce no actions — state is dense here, but the contract and the
     resulting states match Event_engine's sparse store exactly. *)
  let lazy_start = starters <> None in
  let started = if lazy_start then Bytes.make n '\000' else Bytes.empty in
  (* ---------------- per-shard structures --------------------------- *)
  let senders = Array.init kshards (fun _ -> Vec.create ()) in
  let receivers = Array.init kshards (fun _ -> Vec.create ()) in
  let d_outstanding = Array.make kshards 0 in
  let d_queued = Array.make kshards 0 in
  let d_messages = Array.make kshards 0 in
  let d_touched = Array.make kshards 0 in
  let s_max_backlog = Array.make kshards 0 in
  let s_last_active = Array.make kshards 0 in
  (* (phase, node, value) completions of the current round; phase 1 =
     receive, 2 = tick/injection. Each buffer is (phase, node)-sorted
     by construction (phases run in order, nodes ascending). *)
  let comp_bufs : (int * int * r) buf array =
    Array.init kshards (fun _ -> buf ())
  in
  let has_observer = observer != Engine.null_observer in
  (* Per-shard observer event buffers, (phase, node)-sorted by
     construction exactly like [comp_bufs]; delivers and completions
     share one buffer so their interleaving at a node survives the
     merge. *)
  let obs_bufs : (int * int * r obs_ev) buf array =
    if has_observer then Array.init kshards (fun _ -> buf ()) else [||]
  in
  (* Cross-shard transfers: (src, dst, msg); buffer [p * kshards + r]
     is written by sending shard [p] and read by receiving shard [r],
     with the round barrier between the two. *)
  let tx : (int * int * m) buf array =
    Array.init (kshards * kshards) (fun _ -> buf ())
  in
  let shard_metrics =
    match metrics with
    | None -> [||]
    | Some mrec -> Array.init kshards (fun _ -> Metrics.create_like mrec)
  in
  let shard_tel =
    match telemetry with
    | None -> [||]
    | Some tl ->
        Array.init kshards (fun _ ->
            Telemetry.create
              ~windows:(Telemetry.windows_capacity tl)
              ~window_size:(Telemetry.window_size tl) ())
  in
  (* Injections partitioned by owner; order within a shard preserves
     the global (round, node) sort. *)
  let inj_of =
    if ninj = 0 then Array.make kshards [||]
    else begin
      let counts = Array.make kshards 0 in
      Array.iter
        (fun inj ->
          let s = owner.(inj.Event_engine.node) in
          counts.(s) <- counts.(s) + 1)
        injections;
      let parts =
        Array.init kshards (fun s ->
            if counts.(s) = 0 then [||] else Array.make counts.(s) injections.(0))
      in
      let fill = Array.make kshards 0 in
      Array.iter
        (fun inj ->
          let s = owner.(inj.Event_engine.node) in
          parts.(s).(fill.(s)) <- inj;
          fill.(s) <- fill.(s) + 1)
        injections;
      parts
    end
  in
  let inj_ptr = Array.make kshards 0 in
  let ginj_ptr = ref 0 in
  (* ---------------- global (coordinator-only) state ---------------- *)
  let comp_data = ref [||] in
  let comp_len = ref 0 in
  let push_completion =
    match sink with
    | Some f -> f
    | None ->
        fun (c : r Engine.completion) ->
          if !comp_len = Array.length !comp_data then begin
            let d = Array.make (max 8 (2 * !comp_len)) c in
            Array.blit !comp_data 0 d 0 !comp_len;
            comp_data := d
          end;
          !comp_data.(!comp_len) <- c;
          incr comp_len
  in
  let messages = ref 0 in
  let g_max_backlog = ref 0 in
  let outstanding_sends = ref 0 in
  let queued_total = ref 0 in
  let held : (int * int, int * int * m) Heap.t = Heap.create () in
  let held_count = ref 0 in
  let held_seq = ref 0 in
  let g_last_active = ref 0 in
  let round = ref 0 in
  let halted = ref false in
  let halt_cap = match halt_after with Some h -> max 0 h | None -> max_int in
  (* A non-default observer sees every executed round (its on_round_end
     can halt the run), so quiescent-gap jumping is disabled exactly as
     in Event_engine.run. *)
  let can_fast_forward = protocol.on_tick = None && not has_observer in
  let note_peak () =
    match stats with
    | Some c ->
        let in_flight = !outstanding_sends + !queued_total + !held_count in
        if in_flight > c.Event_engine.peak_in_flight then
          c.Event_engine.peak_in_flight <- in_flight
    | None -> ()
  in
  let mark_touched_shard sidx v =
    if track_touched && Bytes.unsafe_get touched v = '\000' then begin
      Bytes.unsafe_set touched v '\001';
      d_touched.(sidx) <- d_touched.(sidx) + 1
    end
  in
  (* First touch of a non-starter: run its on_start (node-local, so
     safe from the owning shard) and enforce the silence contract. *)
  let ensure_started v =
    if lazy_start && Bytes.unsafe_get started v = '\000' then begin
      Bytes.unsafe_set started v '\001';
      let s', actions = protocol.on_start ~node:v states.(v) in
      states.(v) <- s';
      match actions with
      | [] -> ()
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Shard.run: node %d is not in ?starters but its on_start \
                produced actions"
               v)
    end
  in
  (* ---------------- ring primitives (as Engine.run) ---------------- *)
  let in_push slot msg =
    let len = Array.unsafe_get inq_len slot in
    let data = Array.unsafe_get inq_data slot in
    let cap = Array.length data in
    let data =
      if len = cap then begin
        let d = Array.make (if cap = 0 then 2 else 2 * cap) msg in
        let head = Array.unsafe_get inq_head slot in
        let mask = cap - 1 in
        for i = 0 to len - 1 do
          Array.unsafe_set d i (Array.unsafe_get data ((head + i) land mask))
        done;
        Array.unsafe_set inq_data slot d;
        Array.unsafe_set inq_head slot 0;
        d
      end
      else data
    in
    Array.unsafe_set data
      ((Array.unsafe_get inq_head slot + len) land (Array.length data - 1))
      msg;
    Array.unsafe_set inq_len slot (len + 1)
  in
  let in_pop slot =
    let head = Array.unsafe_get inq_head slot in
    let data = Array.unsafe_get inq_data slot in
    let x = Array.unsafe_get data head in
    Array.unsafe_set inq_head slot ((head + 1) land (Array.length data - 1));
    Array.unsafe_set inq_len slot (Array.unsafe_get inq_len slot - 1);
    x
  in
  let out_push v dst msg =
    let len = Array.unsafe_get out_len v in
    let ddata = Array.unsafe_get out_dst v in
    let cap = Array.length ddata in
    if len = cap then begin
      let cap' = if cap = 0 then 2 else 2 * cap in
      let d = Array.make cap' dst in
      let mm = Array.make cap' msg in
      let mdata = Array.unsafe_get out_msg v in
      let head = Array.unsafe_get out_head v in
      let mask = cap - 1 in
      for i = 0 to len - 1 do
        let j = (head + i) land mask in
        Array.unsafe_set d i (Array.unsafe_get ddata j);
        Array.unsafe_set mm i (Array.unsafe_get mdata j)
      done;
      Array.unsafe_set out_dst v d;
      Array.unsafe_set out_msg v mm;
      Array.unsafe_set out_head v 0
    end;
    let ddata = Array.unsafe_get out_dst v in
    let mask = Array.length ddata - 1 in
    let j = (Array.unsafe_get out_head v + len) land mask in
    Array.unsafe_set ddata j dst;
    Array.unsafe_set (Array.unsafe_get out_msg v) j msg;
    Array.unsafe_set out_len v (len + 1)
  in
  (* ---------------- per-shard action application ------------------- *)
  (* [phase] tags the completion for the round-end merge: 1 = receive,
     2 = tick/injection (0 = time-0, coordinator only). *)
  let rec apply_actions sidx phase v t actions =
    match actions with
    | [] -> ()
    | Engine.Send (dst, msg) :: rest ->
        if nbr_slot nbrs_of.(v) dst < 0 then
          raise (Engine.Not_a_neighbor { node = v; dst });
        out_push v dst msg;
        d_outstanding.(sidx) <- d_outstanding.(sidx) + 1;
        if Bytes.unsafe_get on_send_list v = '\000' then begin
          Bytes.unsafe_set on_send_list v '\001';
          Vec.push senders.(sidx) v
        end;
        apply_actions sidx phase v t rest
    | Engine.Complete value :: rest ->
        (match telemetry with
        | Some _ -> Telemetry.note_complete shard_tel.(sidx) ~round:t
        | None -> ());
        if has_observer then buf_push obs_bufs.(sidx) (phase, v, Obs_complete value);
        buf_push comp_bufs.(sidx) (phase, v, value);
        apply_actions sidx phase v t rest
  in
  (* Receiver-side effects of handing [msg] (from [src]) to [dst], on
     [dst]'s owning shard. [record_tx] folds the sender-side transmit
     note in (local sends only — remote ones noted it at the sender's
     shard before crossing). *)
  let local_enqueue sidx record_tx t src dst msg =
    ensure_started dst;
    let slot = inq_off.(dst) + nbr_slot nbrs_of.(dst) src in
    in_push slot msg;
    pending.(dst) <- pending.(dst) + 1;
    if Bytes.unsafe_get on_recv_list dst = '\000' then begin
      Bytes.unsafe_set on_recv_list dst '\001';
      Vec.push receivers.(sidx) dst
    end;
    d_queued.(sidx) <- d_queued.(sidx) + 1;
    mark_touched_shard sidx dst;
    let backlog = Array.unsafe_get inq_len slot in
    if backlog > s_max_backlog.(sidx) then s_max_backlog.(sidx) <- backlog;
    (match metrics with
    | Some _ ->
        let mrec = shard_metrics.(sidx) in
        if record_tx then Metrics.note_transmit_at mrec ~slot ~src ~round:t;
        Metrics.note_backlog mrec ~node:dst ~backlog
    | None -> ());
    match telemetry with
    | Some _ ->
        let tl = shard_tel.(sidx) in
        if record_tx then Telemetry.note_send tl ~round:t;
        Telemetry.note_backlog tl ~round:t ~backlog
    | None -> ()
  in
  (* ---------------- SEND phase (parallel, fault-free only) --------- *)
  let rec drain_free sidx v t budget =
    if budget > 0 && out_len.(v) > 0 then begin
      let head = Array.unsafe_get out_head v in
      let ddata = Array.unsafe_get out_dst v in
      let dst = Array.unsafe_get ddata head in
      let msg = Array.unsafe_get (Array.unsafe_get out_msg v) head in
      Array.unsafe_set out_head v ((head + 1) land (Array.length ddata - 1));
      Array.unsafe_set out_len v (Array.unsafe_get out_len v - 1);
      d_outstanding.(sidx) <- d_outstanding.(sidx) - 1;
      s_last_active.(sidx) <- t;
      let dsh = owner.(dst) in
      if dsh = sidx then local_enqueue sidx true t v dst msg
      else begin
        (* Sender-side notes now; the receiving shard applies the
           queue-side effects after the barrier. *)
        (match metrics with
        | Some _ ->
            let slot = inq_off.(dst) + nbr_slot nbrs_of.(dst) v in
            Metrics.note_transmit_at shard_metrics.(sidx) ~slot ~src:v ~round:t
        | None -> ());
        (match telemetry with
        | Some _ -> Telemetry.note_send shard_tel.(sidx) ~round:t
        | None -> ());
        buf_push tx.((sidx * kshards) + dsh) (v, dst, msg)
      end;
      drain_free sidx v t (budget - 1)
    end
  in
  let send_shard sidx t =
    let sv = senders.(sidx) in
    Vec.sort sv;
    let m = Vec.length sv in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get sv i in
      drain_free sidx v t send_cap;
      if out_len.(v) = 0 then Bytes.unsafe_set on_send_list v '\000'
      else begin
        Vec.set sv !w v;
        incr w
      end
    done;
    Vec.truncate sv !w
  in
  (* ---------------- DELIVER phase (parallel) ----------------------- *)
  (* Apply this shard's incoming cross-shard transfers, sorted by
     (src, dst, seq). seq is the position within the sender shard's
     buffer; a (src, dst) pair never spans two buffers, so the sort
     key is total and per-link FIFO order is preserved. *)
  let apply_transfers sidx t =
    let total = ref 0 in
    for p = 0 to kshards - 1 do
      total := !total + tx.((p * kshards) + sidx).len
    done;
    if !total > 0 then begin
      let keys = Array.make !total (0, 0, 0, 0) in
      let w = ref 0 in
      for p = 0 to kshards - 1 do
        let b = tx.((p * kshards) + sidx) in
        for i = 0 to b.len - 1 do
          let src, dst, _ = b.data.(i) in
          keys.(!w) <- (src, dst, i, p);
          incr w
        done
      done;
      Array.sort compare keys;
      Array.iter
        (fun (src, dst, i, p) ->
          let _, _, msg = tx.((p * kshards) + sidx).data.(i) in
          local_enqueue sidx false t src dst msg)
        keys;
      for p = 0 to kshards - 1 do
        tx.((p * kshards) + sidx).len <- 0
      done
    end
  in
  let pick =
    match config.arbiter with
    | Engine.Lowest_sender_first ->
        fun _t v ->
          let base = inq_off.(v) in
          let k = inq_off.(v + 1) - base in
          let rec scan i =
            if i >= k then None
            else if Array.unsafe_get inq_len (base + i) > 0 then Some i
            else scan (i + 1)
          in
          scan 0
    | Engine.Round_robin ->
        fun _t v ->
          let base = inq_off.(v) in
          let k = inq_off.(v + 1) - base in
          let rec scan steps =
            if steps >= k then None
            else begin
              let idx = rr_pointer.(v) + steps in
              let idx = if idx >= k then idx - k else idx in
              if Array.unsafe_get inq_len (base + idx) > 0 then begin
                rr_pointer.(v) <- (if idx + 1 >= k then 0 else idx + 1);
                Some idx
              end
              else scan (steps + 1)
            end
          in
          scan 0
    | Engine.Custom f ->
        fun t v ->
          let base = inq_off.(v) in
          let k = inq_off.(v + 1) - base in
          let nbrs = nbrs_of.(v) in
          let candidates = ref [] in
          for i = k - 1 downto 0 do
            if Array.unsafe_get inq_len (base + i) > 0 then
              candidates := nbrs.(i) :: !candidates
          done;
          if !candidates = [] then None
          else begin
            let src = f ~round:t ~node:v ~candidates:!candidates in
            if not (List.mem src !candidates) then
              invalid_arg "Shard.run: arbiter chose a non-candidate";
            Some (nbr_slot nbrs src)
          end
  in
  let rec recv_budget sidx t v budget =
    if budget > 0 then
      match pick t v with
      | None -> ()
      | Some qi ->
          let src = nbrs_of.(v).(qi) in
          let slot = inq_off.(v) + qi in
          let msg = in_pop slot in
          pending.(v) <- pending.(v) - 1;
          d_queued.(sidx) <- d_queued.(sidx) - 1;
          d_messages.(sidx) <- d_messages.(sidx) + 1;
          s_last_active.(sidx) <- t;
          (match metrics with
          | Some _ ->
              Metrics.note_deliver_at shard_metrics.(sidx) ~slot ~dst:v ~round:t
          | None -> ());
          (match telemetry with
          | Some _ -> Telemetry.note_deliver shard_tel.(sidx) ~round:t
          | None -> ());
          if has_observer then buf_push obs_bufs.(sidx) (1, v, Obs_deliver src);
          let s, actions =
            protocol.on_receive ~round:t ~node:v ~src msg states.(v)
          in
          states.(v) <- s;
          apply_actions sidx 1 v t actions;
          recv_budget sidx t v (budget - 1)
  in
  let recv_shard sidx t =
    let rv = receivers.(sidx) in
    Vec.sort rv;
    let m = Vec.length rv in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = Vec.get rv i in
      if not (faulty && Bytes.unsafe_get blocked v = '\001') then
        recv_budget sidx t v (min recv_cap pending.(v));
      if pending.(v) = 0 then Bytes.unsafe_set on_recv_list v '\000'
      else begin
        Vec.set rv !w v;
        incr w
      end
    done;
    Vec.truncate rv !w
  in
  let tick_shard sidx tick t =
    Array.iter
      (fun v ->
        if not (faulty && Bytes.unsafe_get blocked v = '\001') then begin
          let s, actions = tick ~round:t ~node:v states.(v) in
          states.(v) <- s;
          apply_actions sidx 2 v t actions
        end)
      part.Partition.members.(sidx)
  in
  let inject_shard sidx t =
    let arr = inj_of.(sidx) in
    let len = Array.length arr in
    while
      inj_ptr.(sidx) < len && arr.(inj_ptr.(sidx)).Event_engine.at <= t
    do
      let inj = arr.(inj_ptr.(sidx)) in
      inj_ptr.(sidx) <- inj_ptr.(sidx) + 1;
      let v = inj.Event_engine.node in
      if not (faulty && Bytes.unsafe_get blocked v = '\001') then begin
        (match telemetry with
        | Some _ -> Telemetry.note_inject shard_tel.(sidx) ~round:t
        | None -> ());
        mark_touched_shard sidx v;
        ensure_started v;
        let s, actions = inj.Event_engine.inject states.(v) in
        states.(v) <- s;
        apply_actions sidx 2 v t actions
      end
    done
  in
  let deliver_shard sidx t =
    apply_transfers sidx t;
    recv_shard sidx t;
    (match protocol.on_tick with
    | None -> ()
    | Some tick -> tick_shard sidx tick t);
    inject_shard sidx t
  in
  (* ---------------- worker lanes and the round barrier ------------- *)
  let helpers_granted =
    let want = kshards - 1 in
    match pool with
    | Some p -> Parallel.reserve p want
    | None -> min want (max 0 (Domain.recommended_domain_count () - 1))
  in
  let lanes = helpers_granted + 1 in
  let exns : exn option array = Array.make kshards None in
  let run_lane lane j t =
    let sidx = ref lane in
    while !sidx < kshards do
      (try
         if j = job_send then send_shard !sidx t else deliver_shard !sidx t
       with e -> exns.(!sidx) <- Some e);
      sidx := !sidx + lanes
    done
  in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let epoch = ref 0 in
  let job = ref jobs_quit in
  let job_round = ref 0 in
  let done_count = ref 0 in
  let worker_body () =
    let my_epoch = ref 0 in
    let quit = ref false in
    let lane =
      Mutex.lock mu;
      (* Lane ids are handed out under the mutex via done_count before
         the first dispatch (epoch 0). *)
      incr done_count;
      let l = !done_count in
      Condition.broadcast cv;
      Mutex.unlock mu;
      l
    in
    while not !quit do
      Mutex.lock mu;
      while !epoch = !my_epoch do
        Condition.wait cv mu
      done;
      my_epoch := !epoch;
      let j = !job and t = !job_round in
      Mutex.unlock mu;
      if j = jobs_quit then quit := true else run_lane lane j t;
      Mutex.lock mu;
      incr done_count;
      Condition.broadcast cv;
      Mutex.unlock mu
    done
  in
  let workers =
    if helpers_granted = 0 then [||]
    else begin
      let ws = Array.init helpers_granted (fun _ -> Domain.spawn worker_body) in
      (* Wait for every worker to claim its lane id before dispatching. *)
      Mutex.lock mu;
      while !done_count < helpers_granted do
        Condition.wait cv mu
      done;
      done_count := 0;
      Mutex.unlock mu;
      ws
    end
  in
  let quitted = ref (helpers_granted = 0) in
  let dispatch j t =
    if helpers_granted = 0 then (if j <> jobs_quit then run_lane 0 j t)
    else begin
      Mutex.lock mu;
      job := j;
      job_round := t;
      incr epoch;
      Condition.broadcast cv;
      Mutex.unlock mu;
      if j <> jobs_quit then run_lane 0 j t;
      Mutex.lock mu;
      while !done_count < helpers_granted do
        Condition.wait cv mu
      done;
      done_count := 0;
      Mutex.unlock mu
    end
  in
  let check_exns () =
    let res = ref None in
    for sidx = kshards - 1 downto 0 do
      match exns.(sidx) with Some e -> res := Some e | None -> ()
    done;
    match !res with Some e -> raise e | None -> ()
  in
  let shutdown () =
    if not !quitted then begin
      quitted := true;
      dispatch jobs_quit 0;
      Array.iter Domain.join workers
    end;
    (match pool with Some p -> Parallel.release p helpers_granted | None -> ());
    (* Fold the per-shard recorders back into the caller's, shard
       order — also on the exception paths, so a Round_limit_exceeded
       still leaves best-effort observability behind. *)
    (match metrics with
    | Some mrec ->
        Array.iter (fun srec -> Metrics.merge_into ~into:mrec srec) shard_metrics
    | None -> ());
    match telemetry with
    | Some tl ->
        Array.iter (fun stl -> Telemetry.merge_into ~into:tl stl) shard_tel
    | None -> ()
  in
  Fun.protect ~finally:shutdown @@ fun () ->
  (* ---------------- coordinator: faulty sequential transport ------- *)
  let note_tel_drop t =
    match telemetry with
    | Some tl -> Telemetry.note_drop tl ~round:t
    | None -> ()
  in
  (* Coordinator-side enqueue (held flushes and the faulty send phase):
     queue effects land on the receiver's shard structures directly —
     safe, the workers are parked at the barrier — with the transmit
     note at the sender's shard recorder and backlog at the
     receiver's, preserving the busy-ownership discipline. *)
  let coord_enqueue record_tx t src dst msg =
    ensure_started dst;
    let sidx = owner.(dst) in
    let slot = inq_off.(dst) + nbr_slot nbrs_of.(dst) src in
    in_push slot msg;
    pending.(dst) <- pending.(dst) + 1;
    if Bytes.unsafe_get on_recv_list dst = '\000' then begin
      Bytes.unsafe_set on_recv_list dst '\001';
      Vec.push receivers.(sidx) dst
    end;
    incr queued_total;
    mark_touched_shard sidx dst;
    let backlog = Array.unsafe_get inq_len slot in
    if backlog > !g_max_backlog then g_max_backlog := backlog;
    (match metrics with
    | Some _ ->
        if record_tx then
          Metrics.note_transmit_at shard_metrics.(owner.(src)) ~slot ~src
            ~round:t;
        Metrics.note_backlog shard_metrics.(sidx) ~node:dst ~backlog
    | None -> ());
    match telemetry with
    | Some tl ->
        if record_tx then Telemetry.note_send tl ~round:t;
        Telemetry.note_backlog tl ~round:t ~backlog
    | None -> ()
  in
  let coord_enqueue_faulty t src dst msg =
    if Faults.crashed fr ~node:dst ~round:t then begin
      Faults.note_crash_drop fr;
      note_tel_drop t;
      match metrics with
      | Some _ -> Metrics.note_crash_drop shard_metrics.(owner.(dst)) ~dst
      | None -> ()
    end
    else if node_down dst ~round:t then begin
      (match dynamic with Some dr -> Dynamic.note_node_drop dr | None -> ());
      note_tel_drop t;
      match metrics with
      | Some _ -> Metrics.note_crash_drop shard_metrics.(owner.(dst)) ~dst
      | None -> ()
    end
    else coord_enqueue false t src dst msg
  in
  let rec flush_held t =
    match Heap.peek held with
    | Some ((due, _), (src, dst, msg)) when due <= t ->
        ignore (Heap.pop held);
        decr held_count;
        g_last_active := t;
        coord_enqueue_faulty t src dst msg;
        flush_held t
    | _ -> ()
  in
  let rec coord_drain_faulty v t budget =
    if budget > 0 && out_len.(v) > 0 then begin
      let head = Array.unsafe_get out_head v in
      let ddata = Array.unsafe_get out_dst v in
      let dst = Array.unsafe_get ddata head in
      let msg = Array.unsafe_get (Array.unsafe_get out_msg v) head in
      Array.unsafe_set out_head v ((head + 1) land (Array.length ddata - 1));
      Array.unsafe_set out_len v (Array.unsafe_get out_len v - 1);
      decr outstanding_sends;
      g_last_active := t;
      (match metrics with
      | Some _ ->
          Metrics.note_transmit shard_metrics.(owner.(v)) ~src:v ~dst ~round:t
      | None -> ());
      (match telemetry with
      | Some tl -> Telemetry.note_send tl ~round:t
      | None -> ());
      if link_severed ~src:v ~dst ~round:t then begin
        (match dynamic with Some dr -> Dynamic.note_link_drop dr | None -> ());
        note_tel_drop t;
        match metrics with
        | Some _ -> Metrics.note_drop shard_metrics.(owner.(v)) ~src:v ~dst
        | None -> ()
      end
      else
        (match Faults.decide fr ~src:v ~dst ~round:t with
        | Faults.Deliver -> coord_enqueue_faulty t v dst msg
        | Faults.Drop ->
            note_tel_drop t;
            (match metrics with
            | Some _ -> Metrics.note_drop shard_metrics.(owner.(v)) ~src:v ~dst
            | None -> ())
        | Faults.Duplicate ->
            (match metrics with
            | Some _ ->
                Metrics.note_duplicate shard_metrics.(owner.(v)) ~src:v ~dst
            | None -> ());
            coord_enqueue_faulty t v dst msg;
            coord_enqueue_faulty t v dst msg
        | Faults.Delay d ->
            (match metrics with
            | Some _ -> Metrics.note_delay shard_metrics.(owner.(v)) ~src:v ~dst
            | None -> ());
            incr held_seq;
            incr held_count;
            Heap.push held (t + d, !held_seq) (v, dst, msg));
      coord_drain_faulty v t (budget - 1)
    end
  in
  let all_senders = Vec.create () in
  let coord_send_faulty t =
    (* One globally sorted pass, exactly the sequential engine's sender
       order, so the fault decision stream is consumed identically. *)
    Vec.clear all_senders;
    for sidx = 0 to kshards - 1 do
      Vec.iter (fun v -> Vec.push all_senders v) senders.(sidx);
      Vec.clear senders.(sidx)
    done;
    Vec.sort all_senders;
    Vec.iter
      (fun v ->
        if Faults.crashed fr ~node:v ~round:t || node_down v ~round:t then
          (* Crashed/churned-out: outbox kept, stays a sender. *)
          Vec.push senders.(owner.(v)) v
        else begin
          coord_drain_faulty v t send_cap;
          if out_len.(v) = 0 then Bytes.unsafe_set on_send_list v '\000'
          else Vec.push senders.(owner.(v)) v
        end)
      all_senders
  in
  (* Precompute this round's crash/churn verdicts for every node the
     parallel DELIVER phase will consult: queued receivers, due
     injections, and (tick protocols) everybody. All schedule and plan
     queries stay on the coordinator. *)
  let precompute_blocked t =
    let verdict v =
      Bytes.unsafe_set blocked v
        (if Faults.crashed fr ~node:v ~round:t || node_down v ~round:t then
           '\001'
         else '\000')
    in
    (match protocol.on_tick with
    | Some _ ->
        for v = 0 to n - 1 do
          verdict v
        done
    | None ->
        for sidx = 0 to kshards - 1 do
          Vec.iter verdict receivers.(sidx)
        done;
        let p = ref !ginj_ptr in
        while !p < ninj && injections.(!p).Event_engine.at <= t do
          verdict injections.(!p).Event_engine.node;
          incr p
        done)
  in
  (* ---------------- coordinator: round-end bookkeeping ------------- *)
  let merge_deltas () =
    for sidx = 0 to kshards - 1 do
      outstanding_sends := !outstanding_sends + d_outstanding.(sidx);
      d_outstanding.(sidx) <- 0;
      queued_total := !queued_total + d_queued.(sidx);
      d_queued.(sidx) <- 0;
      messages := !messages + d_messages.(sidx);
      d_messages.(sidx) <- 0;
      match stats with
      | Some c ->
          c.Event_engine.touched <- c.Event_engine.touched + d_touched.(sidx);
          d_touched.(sidx) <- 0
      | None -> ()
    done
  in
  (* Drain the round's completions in (phase, node) order — each
     shard's buffer is already sorted, and a node lives in exactly one
     shard, so a k-way merge reconstructs the sequential chronological
     order exactly. *)
  let drain_completions t =
    let ptr = Array.make kshards 0 in
    let continue_ = ref true in
    while !continue_ do
      let best = ref (-1) in
      let best_key = ref (max_int, max_int) in
      for sidx = 0 to kshards - 1 do
        let b = comp_bufs.(sidx) in
        if ptr.(sidx) < b.len then begin
          let phase, node, _ = b.data.(ptr.(sidx)) in
          if (phase, node) < !best_key then begin
            best_key := (phase, node);
            best := sidx
          end
        end
      done;
      if !best < 0 then continue_ := false
      else begin
        let b = comp_bufs.(!best) in
        let _, node, value = b.data.(ptr.(!best)) in
        ptr.(!best) <- ptr.(!best) + 1;
        push_completion { Engine.node; round = t; value }
      end
    done;
    Array.iter (fun b -> b.len <- 0) comp_bufs
  in
  let advance_global_inj t =
    while !ginj_ptr < ninj && injections.(!ginj_ptr).Event_engine.at <= t do
      incr ginj_ptr
    done
  in
  let raise_round_limit () =
    let loads = Array.make n 0 in
    for v = 0 to n - 1 do
      loads.(v) <- pending.(v) + out_len.(v)
    done;
    let rec drain () =
      match Heap.pop held with
      | Some (_, (_, dst, _)) ->
          loads.(dst) <- loads.(dst) + 1;
          drain ()
      | None -> ()
    in
    drain ();
    raise
      (Engine.Round_limit_exceeded
         {
           limit = config.max_rounds;
           outstanding = !outstanding_sends;
           queued = !queued_total;
           held = !held_count;
           busiest = Engine.top_loaded loads;
         })
  in
  (* Replay the round's buffered observer events in (phase, node)
     order — the k-way merge from drain_completions, reused. *)
  let replay_observer t =
    if has_observer then begin
      let ptr = Array.make kshards 0 in
      let continue_ = ref true in
      while !continue_ do
        let best = ref (-1) in
        let best_key = ref (max_int, max_int) in
        for sidx = 0 to kshards - 1 do
          let b = obs_bufs.(sidx) in
          if ptr.(sidx) < b.len then begin
            let phase, node, _ = b.data.(ptr.(sidx)) in
            if (phase, node) < !best_key then begin
              best_key := (phase, node);
              best := sidx
            end
          end
        done;
        if !best < 0 then continue_ := false
        else begin
          let b = obs_bufs.(!best) in
          let _, node, ev = b.data.(ptr.(!best)) in
          ptr.(!best) <- ptr.(!best) + 1;
          match ev with
          | Obs_deliver src -> observer.Engine.on_deliver ~round:t ~src ~dst:node
          | Obs_complete value ->
              observer.Engine.on_complete ~round:t ~node ~value
        end
      done;
      Array.iter (fun b -> b.len <- 0) obs_bufs
    end
  in
  let round_end t =
    replay_observer t;
    (match stats with
    | Some c -> c.Event_engine.executed_rounds <- c.Event_engine.executed_rounds + 1
    | None -> ());
    (match telemetry with
    | Some tl ->
        let in_flight = !outstanding_sends + !queued_total + !held_count in
        Telemetry.note_in_flight tl ~round:t ~in_flight
    | None -> ());
    note_peak ();
    if has_observer then begin
      let in_flight = !outstanding_sends + !queued_total + !held_count in
      match observer.Engine.on_round_end ~round:t ~in_flight with
      | `Continue -> ()
      | `Halt -> halted := true
    end
  in
  (* ---------------- time 0 ----------------------------------------- *)
  let start_node v =
    let s, actions = protocol.on_start ~node:v states.(v) in
    states.(v) <- s;
    (* Inline apply with direct global counters and completion
       streaming — time 0 is coordinator-sequential, in node order,
       exactly as both sequential engines run it. *)
    List.iter
      (fun a ->
        match a with
        | Engine.Send (dst, msg) ->
            if nbr_slot nbrs_of.(v) dst < 0 then
              raise (Engine.Not_a_neighbor { node = v; dst });
            out_push v dst msg;
            incr outstanding_sends;
            if Bytes.unsafe_get on_send_list v = '\000' then begin
              Bytes.unsafe_set on_send_list v '\001';
              Vec.push senders.(owner.(v)) v
            end
        | Engine.Complete value ->
            if has_observer then
              observer.Engine.on_complete ~round:0 ~node:v ~value;
            (match telemetry with
            | Some tl -> Telemetry.note_complete tl ~round:0
            | None -> ());
            push_completion { Engine.node = v; round = 0; value })
      actions
  in
  (match starters with
  | None ->
      for v = 0 to n - 1 do
        if track_touched then mark_touched_shard owner.(v) v;
        start_node v
      done
  | Some l ->
      let last = ref (-1) in
      List.iter
        (fun v ->
          if v < 0 || v >= n then invalid_arg "Shard.run: starter out of range";
          if v <= !last then
            invalid_arg "Shard.run: starters must be strictly ascending";
          last := v;
          mark_touched_shard owner.(v) v;
          Bytes.unsafe_set started v '\001';
          start_node v)
        l);
  (* Time-0 touch marks were counted into per-shard deltas. *)
  merge_deltas ();
  note_peak ();
  (* ---------------- the round loop --------------------------------- *)
  let next_injection () =
    if !ginj_ptr < ninj then Some injections.(!ginj_ptr).Event_engine.at
    else None
  in
  (if not faulty then
     while
       (not !halted)
       && (!outstanding_sends > 0 || !queued_total > 0 || !ginj_ptr < ninj
          || !round < config.min_rounds)
     do
       incr round;
       let t = !round in
       if t > halt_cap then halted := true
       else begin
         if t > config.max_rounds then raise_round_limit ();
         let jump_to =
           if can_fast_forward && !outstanding_sends = 0 && !queued_total = 0
           then
             match next_injection () with
             | Some a when a > t -> Some (min (a - 1) config.max_rounds)
             | Some _ -> None
             | None -> Some (min config.min_rounds config.max_rounds)
           else None
         in
         match jump_to with
         | Some target -> round := max t target
         | None ->
             dispatch job_send t;
             check_exns ();
             dispatch job_deliver t;
             check_exns ();
             merge_deltas ();
             drain_completions t;
             advance_global_inj t;
             round_end t
       end
     done
   else
     while
       (not !halted)
       && (!outstanding_sends > 0 || !queued_total > 0 || !held_count > 0
          || !ginj_ptr < ninj
          || !round < config.min_rounds)
     do
       incr round;
       let t = !round in
       if t > halt_cap then halted := true
       else begin
         if t > config.max_rounds then raise_round_limit ();
         let jump_to =
           if can_fast_forward && !outstanding_sends = 0 && !queued_total = 0
           then begin
             let next_due =
               match Heap.peek held with
               | Some ((due, _), _) -> Some due
               | None -> None
             in
             let next_ev =
               match (next_due, next_injection ()) with
               | None, None -> None
               | (Some _ as a), None | None, (Some _ as a) -> a
               | Some a, Some b -> Some (min a b)
             in
             match next_ev with
             | None -> Some (min config.min_rounds config.max_rounds)
             | Some a when a > t -> Some (min (a - 1) config.max_rounds)
             | Some _ -> None
           end
           else None
         in
         match jump_to with
         | Some target -> round := max t target
         | None ->
             flush_held t;
             coord_send_faulty t;
             note_peak ();
             precompute_blocked t;
             dispatch job_deliver t;
             check_exns ();
             merge_deltas ();
             drain_completions t;
             advance_global_inj t;
             round_end t
       end
     done);
  (* ---------------- result assembly (as Engine.run) ---------------- *)
  let last_active =
    Array.fold_left max !g_last_active s_last_active
  in
  let max_backlog = Array.fold_left max !g_max_backlog s_max_backlog in
  let comp = !comp_data in
  let len = !comp_len in
  let sorted = ref true in
  for i = 1 to len - 1 do
    let a = comp.(i - 1) and b = comp.(i) in
    if
      a.Engine.round > b.Engine.round
      || (a.Engine.round = b.Engine.round && a.Engine.node >= b.Engine.node)
    then sorted := false
  done;
  let completions =
    if !sorted then begin
      let acc = ref [] in
      for i = len - 1 downto 0 do
        acc := comp.(i) :: !acc
      done;
      !acc
    end
    else begin
      let completion_list = ref [] in
      for i = 0 to len - 1 do
        completion_list := comp.(i) :: !completion_list
      done;
      List.sort
        (fun (a : r Engine.completion) (b : r Engine.completion) ->
          match compare a.round b.round with
          | 0 -> compare a.node b.node
          | c -> c)
        !completion_list
    end
  in
  {
    Engine.completions;
    rounds = last_active;
    messages = !messages;
    max_link_backlog = max_backlog;
    expansion = config.receive_capacity;
  }

let run ?shards ?pool ?partition ?faults ?dynamic ?metrics ?telemetry ~graph
    ~config ~protocol () =
  let n = Graph.n graph in
  let part =
    match partition with
    | Some p -> p
    | None ->
        let shards =
          match shards with
          | Some k ->
              if k < 1 then invalid_arg "Shard.run: shards must be >= 1";
              k
          | None -> auto_shards ()
        in
        if shards = 1 then Partition.contiguous ~n ~shards:1
        else Partition.greedy ~graph ~shards
  in
  if part.Partition.shards = 1 then
    Engine.run ?faults ?dynamic ?metrics ?telemetry ~graph ~config ~protocol ()
  else
    run_core ?faults ?dynamic ?metrics ?telemetry ~injections:[||]
      ~halt_after:None ~starters:None ~part ~pool ~n
      ~neighbors:(Graph.neighbors graph) ~config ~protocol ()

let run_implicit ?shards ?pool ?partition ?faults ?dynamic ?observer ?metrics
    ?telemetry ?sink ?(injections = [||]) ?halt_after ?stats ?starters ~topo
    ~config ~protocol () =
  (match protocol.Engine.on_tick with
  | None -> ()
  | Some _ ->
      invalid_arg
        "Shard.run_implicit: tick-driven protocols are not supported; \
         schedule work via ?injections");
  let n = Itopo.n topo in
  let part =
    match partition with
    | Some p -> p
    | None ->
        let shards =
          match shards with
          | Some k ->
              if k < 1 then invalid_arg "Shard.run_implicit: shards must be >= 1";
              k
          | None -> auto_shards ()
        in
        Partition.contiguous ~n ~shards
  in
  if part.Partition.shards = 1 then
    Event_engine.run ?faults ?dynamic ?observer ?metrics ?telemetry ?sink
      ~injections ?halt_after ?stats ?starters ~topo ~config ~protocol ()
  else
    run_core ?faults ?dynamic ?observer ?metrics ?telemetry ?sink ?stats
      ~injections ~halt_after ~starters ~part ~pool ~n
      ~neighbors:(Itopo.neighbors topo) ~config ~protocol ()
