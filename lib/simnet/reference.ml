(* The pre-active-set synchronous engine, retained as a test oracle.
   See reference.mli.

   This is the dense O(n)-per-round implementation the optimised
   {!Engine} replaced: every round scans all n nodes in the send,
   receive and tick phases, neighbour lookups go through a per-node
   Hashtbl, and completions accumulate in a list. Keep it boring and
   keep it verbatim — its only job is to define, operationally, what
   "bit-identical" means for the equivalence properties in
   test/test_equiv.ml. Do not optimise this file. *)

open Engine
module Graph = Countq_topology.Graph
module Heap = Countq_util.Heap

(* Per-node runtime: incoming FIFO queues indexed by the sender's
   position in the receiver's sorted neighbour array, plus an outbox
   drained at [send_capacity] messages per round. *)
type 'm node_rt = {
  nbrs : int array;
  nbr_index : (int, int) Hashtbl.t; (* sender id -> incoming queue index *)
  inq : 'm Queue.t array;
  outbox : (int * 'm) Queue.t;
  mutable rr_pointer : int;
  mutable pending : int;
}

let run ?faults ?dynamic ?(observer = null_observer)
    ?(keep_alive = fun () -> false) ?metrics ~graph ~config ~protocol () =
  if config.receive_capacity < 1 || config.send_capacity < 1 then
    invalid_arg "Engine.run: capacities must be >= 1";
  let n = Graph.n graph in
  let states = Array.init n protocol.initial_state in
  let rt =
    Array.init n (fun v ->
        let nbrs = Graph.neighbors graph v in
        let nbr_index = Hashtbl.create (max 1 (Array.length nbrs)) in
        Array.iteri (fun i u -> Hashtbl.replace nbr_index u i) nbrs;
        {
          nbrs;
          nbr_index;
          inq = Array.init (Array.length nbrs) (fun _ -> Queue.create ());
          outbox = Queue.create ();
          rr_pointer = 0;
          pending = 0;
        })
  in
  let completions = ref [] in
  let messages = ref 0 in
  let max_backlog = ref 0 in
  let outstanding_sends = ref 0 in
  let queued_total = ref 0 in
  (* Messages postponed by a Delay fault, keyed by delivery round (FIFO
     among equal rounds via the insertion counter). *)
  let held : (int * int, int * int * 'm) Heap.t = Heap.create () in
  let held_count = ref 0 in
  let held_seq = ref 0 in
  let crashed v round =
    match faults with
    | None -> false
    | Some fr -> Faults.crashed fr ~node:v ~round
  in
  let dyn_down v round =
    match dynamic with
    | None -> false
    | Some dr -> not (Dynamic.node_up (Dynamic.sched dr) ~round ~node:v)
  in
  (* Crashed by the fault plan or churned out by the dynamic schedule:
     either way the node is silent this round but keeps its state. *)
  let down v round = crashed v round || dyn_down v round in
  let severed u w round =
    match dynamic with
    | None -> false
    | Some dr -> not (Dynamic.link_up (Dynamic.sched dr) ~round ~u ~v:w)
  in
  let apply_actions v round actions =
    List.iter
      (fun action ->
        match action with
        | Send (dst, msg) ->
            if not (Hashtbl.mem rt.(v).nbr_index dst) then
              raise (Not_a_neighbor { node = v; dst });
            Queue.push (dst, msg) rt.(v).outbox;
            incr outstanding_sends
        | Complete value ->
            observer.on_complete ~round ~node:v ~value;
            completions := { node = v; round; value } :: !completions)
      actions
  in
  (* Time 0: the one-shot requests are issued; no communication yet. *)
  for v = 0 to n - 1 do
    let s, actions = protocol.on_start ~node:v states.(v) in
    states.(v) <- s;
    apply_actions v 0 actions
  done;
  (* Picks the sender whose queue head should be delivered next, per the
     configured arbitration policy. Returns the incoming-queue index. *)
  let pick nv t v =
    let k = Array.length nv.inq in
    match config.arbiter with
    | Lowest_sender_first ->
        let rec scan i =
          if i >= k then None
          else if not (Queue.is_empty nv.inq.(i)) then Some i
          else scan (i + 1)
        in
        scan 0
    | Round_robin ->
        let rec scan steps =
          if steps >= k then None
          else begin
            let idx = (nv.rr_pointer + steps) mod k in
            if not (Queue.is_empty nv.inq.(idx)) then begin
              nv.rr_pointer <- (idx + 1) mod k;
              Some idx
            end
            else scan (steps + 1)
          end
        in
        scan 0
    | Custom f ->
        let candidates = ref [] in
        for i = k - 1 downto 0 do
          if not (Queue.is_empty nv.inq.(i)) then
            candidates := nv.nbrs.(i) :: !candidates
        done;
        if !candidates = [] then None
        else begin
          let src = f ~round:t ~node:v ~candidates:!candidates in
          if not (List.mem src !candidates) then
            invalid_arg "Engine.run: arbiter chose a non-candidate";
          Some (Hashtbl.find nv.nbr_index src)
        end
  in
  (* Hand [msg] (sent by [src]) to [dst]'s incoming FIFO in round [t],
     or discard it if the receiver is down. *)
  let enqueue_at t src dst msg =
    if crashed dst t then begin
      Faults.note_crash_drop (Option.get faults);
      match metrics with
      | Some m -> Metrics.note_crash_drop m ~dst
      | None -> ()
    end
    else if dyn_down dst t then begin
      (match dynamic with Some dr -> Dynamic.note_node_drop dr | None -> ());
      match metrics with
      | Some m -> Metrics.note_crash_drop m ~dst
      | None -> ()
    end
    else begin
      let nd = rt.(dst) in
      let qi = Hashtbl.find nd.nbr_index src in
      Queue.push msg nd.inq.(qi);
      nd.pending <- nd.pending + 1;
      incr queued_total;
      let backlog = Queue.length nd.inq.(qi) in
      max_backlog := max !max_backlog backlog;
      match metrics with
      | Some m -> Metrics.note_backlog m ~node:dst ~backlog
      | None -> ()
    end
  in
  let round = ref 0 in
  let last_active = ref 0 in
  let halted = ref false in
  while
    (not !halted)
    && (!outstanding_sends > 0 || !queued_total > 0 || !held_count > 0
       || !round < config.min_rounds || keep_alive ())
  do
    incr round;
    if !round > config.max_rounds then begin
      (* Same payload as the optimised engine computes at its raise
         point: per-node load, with held messages charged to their
         destination. *)
      let loads = Array.make n 0 in
      for v = 0 to n - 1 do
        loads.(v) <- rt.(v).pending + Queue.length rt.(v).outbox
      done;
      let rec drain () =
        match Heap.pop held with
        | Some (_, (_, dst, _)) ->
            loads.(dst) <- loads.(dst) + 1;
            drain ()
        | None -> ()
      in
      drain ();
      raise
        (Round_limit_exceeded
           {
             limit = config.max_rounds;
             outstanding = !outstanding_sends;
             queued = !queued_total;
             held = !held_count;
             busiest = top_loaded loads;
           })
    end;
    let t = !round in
    (* Fault-delayed messages whose spike has elapsed join the receiver
       queues ahead of this round's fresh sends. *)
    let rec flush_held () =
      match Heap.peek held with
      | Some ((due, _), (src, dst, msg)) when due <= t ->
          ignore (Heap.pop held);
          decr held_count;
          last_active := t;
          enqueue_at t src dst msg;
          flush_held ()
      | _ -> ()
    in
    flush_held ();
    (* Send phase. *)
    for v = 0 to n - 1 do
      if not (down v t) then begin
        let nv = rt.(v) in
        let budget = ref config.send_capacity in
        while !budget > 0 && not (Queue.is_empty nv.outbox) do
          let dst, msg = Queue.pop nv.outbox in
          decr outstanding_sends;
          decr budget;
          last_active := t;
          (match metrics with
          | Some m -> Metrics.note_transmit m ~src:v ~dst ~round:t
          | None -> ());
          if severed v dst t then begin
            (* Lost at the sender's end; the fault plan's decision
               stream is not consumed for a severed link. *)
            (match dynamic with
            | Some dr -> Dynamic.note_link_drop dr
            | None -> ());
            match metrics with
            | Some m -> Metrics.note_drop m ~src:v ~dst
            | None -> ()
          end
          else
            let decision =
              match faults with
              | None -> Faults.Deliver
              | Some fr -> Faults.decide fr ~src:v ~dst ~round:t
            in
            match decision with
          | Faults.Deliver -> enqueue_at t v dst msg
          | Faults.Drop -> (
              match metrics with
              | Some m -> Metrics.note_drop m ~src:v ~dst
              | None -> ())
          | Faults.Duplicate ->
              (match metrics with
              | Some m -> Metrics.note_duplicate m ~src:v ~dst
              | None -> ());
              enqueue_at t v dst msg;
              enqueue_at t v dst msg
          | Faults.Delay d ->
              (match metrics with
              | Some m -> Metrics.note_delay m ~src:v ~dst
              | None -> ());
              incr held_seq;
              incr held_count;
              Heap.push held (t + d, !held_seq) (v, dst, msg)
        done
      end
    done;
    (* Receive phase. *)
    for v = 0 to n - 1 do
      let nv = rt.(v) in
      if nv.pending > 0 && not (down v t) then begin
        let budget = ref (min config.receive_capacity nv.pending) in
        while !budget > 0 do
          match pick nv t v with
          | None -> budget := 0
          | Some qi ->
              let src = nv.nbrs.(qi) in
              let msg = Queue.pop nv.inq.(qi) in
              nv.pending <- nv.pending - 1;
              decr queued_total;
              incr messages;
              decr budget;
              last_active := t;
              (match metrics with
              | Some m -> Metrics.note_deliver m ~src ~dst:v ~round:t
              | None -> ());
              observer.on_deliver ~round:t ~src ~dst:v;
              let s, actions =
                protocol.on_receive ~round:t ~node:v ~src msg states.(v)
              in
              states.(v) <- s;
              apply_actions v t actions
        done
      end
    done;
    (* Tick phase: work issued at time [t] enters the network in round
       [t + 1], mirroring the one-shot requests issued at time 0. *)
    (match protocol.on_tick with
    | None -> ()
    | Some tick ->
        for v = 0 to n - 1 do
          if not (down v t) then begin
            let s, actions = tick ~round:t ~node:v states.(v) in
            states.(v) <- s;
            apply_actions v t actions
          end
        done);
    let in_flight = !outstanding_sends + !queued_total + !held_count in
    (match observer.on_round_end ~round:t ~in_flight with
    | `Continue -> ()
    | `Halt -> halted := true)
  done;
  let completions =
    List.sort
      (fun (a : _ completion) (b : _ completion) ->
        match compare a.round b.round with 0 -> compare a.node b.node | c -> c)
      !completions
  in
  {
    completions;
    rounds = !last_active;
    messages = !messages;
    max_link_backlog = !max_backlog;
    expansion = config.receive_capacity;
  }
