(** Event-driven simulation core: idle nodes hold no live state.

    {!Engine.run} made round cost proportional to work, but its {e
    setup} still pays O(n + m): per-node state, CSR incoming rings and
    outboxes are allocated for the whole graph before the first
    message moves, which is what pinned the experiment ceilings near
    n = 1024. This engine turns the remaining dense axis lazy. It runs
    on an {!Countq_topology.Implicit} topology — adjacency as index
    arithmetic, never materialised — and a node exists only from its
    first touch (a start action, a delivered message, an injection): a
    sparse slot table maps node ids to a compact touch-ordered store,
    and a node's ring buffers are reclaimed the moment it goes fully
    quiescent. A million-node one-shot arrow run allocates a handful
    of live nodes at any instant plus one O(n)-int slot map.

    Time advances as a two-level calendar: the current round's work is
    the same sorted active-set send/receive phases as {!Engine.run}
    (bit-for-bit — see below), and everything scheduled further out
    (the open-loop injection schedule, fault-delayed deliveries) lives
    in ordered future buckets the engine {e jumps} to when the network
    goes quiescent, so simulated horizons cost only the rounds in
    which something happens.

    {b Pinned semantics.} On any materialisable topology a run here is
    bit-identical to {!Engine.run} on the materialised twin — same
    completions, rounds, messages, backlog, observer streams, fault
    tallies, metrics and {!Engine.Round_limit_exceeded} payloads (the
    qcheck suite in [test/test_event_engine.ml] pins this, fault-free
    and faulty, exactly as Engine was pinned to Reference). The engine
    shares Engine's types wholesale; what changes is representation,
    plus two restrictions that make laziness sound:

    - {b No [on_tick].} A tick handler runs on {e every} node {e
      every} round — the antithesis of event-driven. Protocols with
      one are rejected ([Invalid_argument]); scheduled work enters via
      [?injections] instead.
    - {b Declared starters.} [on_start] fires eagerly only on the
      [?starters] nodes (default: all nodes, which is drop-in but
      materialises everything). Any other node's [on_start] runs
      lazily at first touch and must return no actions — a sleeping
      node that would have spoken at time 0 was never asleep. The
      engine raises [Invalid_argument] if the contract is violated, so
      a wrong starter set fails loudly instead of dropping actions. *)

type ('s, 'm, 'r) injection = {
  at : int;  (** round the injection fires, [>= 1]. *)
  node : int;
  inject : 's -> 's * ('m, 'r) Engine.action list;
}
(** One scheduled event: at the tick position of round [at] (after the
    round's deliveries, like {!Engine.protocol.on_tick}), [inject] is
    applied to [node]'s current state; sends it issues enter the
    network in round [at + 1]. Equivalent to — and pinned against — an
    [on_tick] handler that fires the same closures, without the
    O(n)-per-round scan. Under faults or churn an injection into a
    node that is crashed or down at round [at] is dropped, exactly as
    that node's tick would not have run. *)

type stats = {
  mutable touched : int;  (** nodes materialised over the whole run. *)
  mutable peak_in_flight : int;
      (** max simultaneous outstanding + queued + held messages. *)
  mutable executed_rounds : int;
      (** rounds actually simulated (quiescent gaps are jumped, not
          spun — compare with {!Engine.result.rounds}). *)
}
(** Cost counters for the laziness itself — what the n-scaling probe
    reports. Pass a fresh record via [?stats] to collect them. *)

val fresh_stats : unit -> stats

val run :
  ?faults:Faults.runtime ->
  ?dynamic:Dynamic.runtime ->
  ?observer:'r Engine.observer ->
  ?keep_alive:(unit -> bool) ->
  ?metrics:Metrics.t ->
  ?telemetry:Telemetry.t ->
  ?sink:('r Engine.completion -> unit) ->
  ?injections:('s, 'm, 'r) injection array ->
  ?halt_after:int ->
  ?stats:stats ->
  ?starters:int list ->
  topo:Countq_topology.Implicit.t ->
  config:Engine.config ->
  protocol:('s, 'm, 'r) Engine.protocol ->
  unit ->
  'r Engine.result
(** Run [protocol] on the implicit topology. All optional hooks keep
    their {!Engine.run} meaning and gating (a non-default observer or
    keep_alive disables quiescent-gap jumping, exactly as there).

    [injections] must be sorted by [(at, node)] (duplicates allowed,
    fired in order). [halt_after] ends the run cleanly at the end of
    round [halt_after] — the open-loop harness's horizon for saturated
    runs that would never drain; unlike an observer-driven halt it
    keeps gap-jumping enabled. [starters] must be strictly ascending
    node ids.

    [Metrics] recorders are sized from a materialised graph, so
    [?metrics] only fits instances small enough to materialise — which
    is exactly when you'd ask for per-edge counters. [?telemetry]
    (windowed time-series, see {!Telemetry}) has no such limit — it is
    O(windows) regardless of n — and, being passive, does {e not}
    disable quiescent-gap jumping: jumped-over windows stay zero.

    [sink] streams completions out as they happen instead of retaining
    them: when present, each completion is passed to [sink] exactly
    when it would have been recorded (same order), and the returned
    [result.completions] is [[]]. Rounds/messages/backlog aggregates
    are unaffected. This removes the last O(completed) memory term for
    long-horizon open-loop runs; the sink must not assume completions
    arrive sorted by node (they arrive in execution order: ascending
    round, arbitrary node order within a round).

    @raise Invalid_argument on tick-driven protocols, unsorted
    injections or starters, or a non-starter whose [on_start] emits
    actions.
    @raise Engine.Round_limit_exceeded as {!Engine.run}, with the
    [busiest] summary built from the touched nodes via
    {!Engine.top_loaded_pairs}. *)
