(** Per-node and per-edge execution metrics for both simulation engines.

    The paper's entire argument is about {e measured cost} — concurrent
    delay, message contention, information propagation — yet a bare
    {!Engine.result} only reports aggregates. A [Metrics.t] is a
    mutable recorder threaded through a run via the engines' [?metrics]
    argument: it tallies, per node and per directed edge, every
    transmission, delivery, fault decision (drops / duplicates / delay
    spikes from {!Faults}), crash drop, retransmission (from
    {!Reliable}), peak link backlog and busy rounds. The recorder is
    {e passive}: it never influences the execution, so a run with
    metrics attached is bit-identical to the same run without (a qcheck
    property pins this), and the engines' idle-round fast-forward stays
    enabled — an idle round by definition records nothing.

    Cost: recording is a handful of array increments per message (edge
    counters are CSR-indexed off the graph like the engine's own rings;
    no hashing, no allocation), so metrics-on runs stay within a few
    percent of metrics-off — the BENCH_3.json overhead probe pins the
    number per release.

    Create one recorder per run: {!create} sizes every array from the
    graph. The [note_*] functions are the engines' recording hooks —
    protocol or harness code normally only reads the snapshot
    accessors. *)

type t

val create : graph:Countq_topology.Graph.t -> t
(** A fresh all-zero recorder for runs on [graph]. *)

val n : t -> int
(** Number of nodes the recorder was created for. *)

val create_like : t -> t
(** A fresh all-zero recorder with the same shape (graph) as the
    argument — what the sharded engine hands each shard, without
    needing the materialised graph again. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src]'s tallies into [into]: counters
    (including [busy_rounds]) add, peaks ([peak_backlog], the internal
    last-busy round) take the max. Correct for [busy_rounds] only when
    each node's transmit/deliver marks live in at most one of the two
    recorders — the sharded engine's per-shard recorders satisfy this
    by ownership (a node's sends and receives are always recorded by
    its owning shard).
    @raise Invalid_argument if the recorders' shapes differ. *)

(** {1 Recording hooks} — called by {!Engine.run}, {!Reference.run},
    {!Async.run} and {!Reliable.wrap}; rounds are event times under the
    asynchronous engine. *)

val note_transmit : t -> src:int -> dst:int -> round:int -> unit
(** A message left [src]'s outbox towards [dst] (before any fault
    decision). Counts a send and marks [src] busy this round. *)

val note_deliver : t -> src:int -> dst:int -> round:int -> unit
(** A message was handed to the protocol at [dst]. Counts a receive
    and marks [dst] busy this round. *)

val note_transmit_at : t -> slot:int -> src:int -> round:int -> unit
(** Fast-path {!note_transmit} for callers that already hold the edge's
    CSR slot: [slot] must be the receiver-row index of the directed
    edge [src -> dst] — the receiver's CSR base plus the position of
    [src] in the receiver's sorted neighbour array. {!Engine.run}'s
    incoming rings use the identical layout (both are prefix sums of
    [Graph.neighbors] lengths in node order), so the engine passes the
    slot it computed anyway and skips the neighbour search. *)

val note_deliver_at : t -> slot:int -> dst:int -> round:int -> unit
(** Fast-path {!note_deliver}; [slot] as in {!note_transmit_at}. *)

val note_drop : t -> src:int -> dst:int -> unit
(** The fault layer dropped the transmission. *)

val note_duplicate : t -> src:int -> dst:int -> unit
(** The fault layer duplicated the transmission. *)

val note_delay : t -> src:int -> dst:int -> unit
(** The fault layer postponed the transmission. *)

val note_crash_drop : t -> dst:int -> unit
(** A message was discarded because the receiver was down. *)

val note_retransmit : t -> node:int -> unit
(** The {!Reliable} layer retransmitted a payload from [node]. *)

val note_backlog : t -> node:int -> backlog:int -> unit
(** [node] has [backlog] messages queued on one incoming link; the
    per-node peak is retained (contention proxy). *)

(** {1 Snapshots} *)

type node_stats = {
  node : int;
  sends : int;  (** messages that left this node's outbox. *)
  receives : int;  (** messages delivered to this node's protocol. *)
  drops : int;  (** fault drops of this node's transmissions. *)
  dups : int;  (** fault duplications of this node's transmissions. *)
  delays : int;  (** fault delay spikes on this node's transmissions. *)
  crash_drops : int;  (** messages lost because this node was down. *)
  retransmits : int;  (** {!Reliable} retransmissions from this node. *)
  peak_backlog : int;  (** largest single-link incoming queue seen. *)
  busy_rounds : int;  (** rounds in which the node sent or received. *)
}

type edge_stats = {
  src : int;
  dst : int;
  e_sends : int;
  e_receives : int;
  e_drops : int;
  e_dups : int;
  e_delays : int;
}

val node_stats : t -> int -> node_stats
(** Snapshot of one node's counters. *)

val per_node : t -> node_stats list
(** All nodes, in id order. *)

val per_edge : t -> edge_stats list
(** Directed edges with at least one recorded event, in [(src, dst)]
    order. *)

val total_sends : t -> int
val total_receives : t -> int

val hottest_nodes : ?k:int -> t -> (int * int) list
(** Top [k] (default 5) [(node, sends + receives)] pairs with positive
    traffic, heaviest first, ties to the lower id — the same shape as
    {!Engine.top_loaded}. *)

val hottest_edges : ?k:int -> t -> ((int * int) * int) list
(** Top [k] (default 5) [((src, dst), traffic)] directed edges. *)

(** {1 Rendering and export} *)

val render_heatmap : ?per_row:int -> t -> string
(** ASCII congestion heatmap: one cell per node (rows of [per_row],
    default 64, cells in id order), intensity scaled to the busiest
    node's [sends + receives] over the ramp [" .:-=+*#%@"]. A legend
    line gives the scale. *)

val to_jsonl : t -> string
(** One JSON object per line: [{"type":"node", …}] for every node with
    any recorded activity, then [{"type":"edge", …}] for every active
    directed edge — the export the [countq observe --json] subcommand
    appends to its span dump. Each line parses with
    {!Countq_util.Json.of_string}. *)
