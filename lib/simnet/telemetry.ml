(* Windowed telemetry + span reservoirs. See telemetry.mli. *)

module Rng = Countq_util.Rng
module Heap = Countq_util.Heap
module J = Countq_util.Json

type slot = {
  mutable s_index : int; (* window number stored here; -1 = never used *)
  mutable s_sends : int;
  mutable s_deliveries : int;
  mutable s_completions : int;
  mutable s_injections : int;
  mutable s_drops : int;
  mutable s_retransmits : int;
  mutable s_max_backlog : int;
  mutable s_max_in_flight : int;
}

let fresh_slot () =
  {
    s_index = -1;
    s_sends = 0;
    s_deliveries = 0;
    s_completions = 0;
    s_injections = 0;
    s_drops = 0;
    s_retransmits = 0;
    s_max_backlog = 0;
    s_max_in_flight = 0;
  }

let reset_slot s index =
  s.s_index <- index;
  s.s_sends <- 0;
  s.s_deliveries <- 0;
  s.s_completions <- 0;
  s.s_injections <- 0;
  s.s_drops <- 0;
  s.s_retransmits <- 0;
  s.s_max_backlog <- 0;
  s.s_max_in_flight <- 0

type t = {
  win : int;
  ring : slot array;
  mutable cur : slot; (* ring.(cur_index mod cap), cached *)
  mutable cur_index : int; (* window of the latest event; -1 = none *)
}

let create ?(windows = 64) ~window_size () =
  if window_size < 1 then invalid_arg "Telemetry.create: window_size < 1";
  if windows < 1 then invalid_arg "Telemetry.create: windows < 1";
  let ring = Array.init windows (fun _ -> fresh_slot ()) in
  { win = window_size; ring; cur = ring.(0); cur_index = -1 }

let window_size t = t.win

(* The hot path: one division to find the event's window; same window
   as the previous event (the overwhelmingly common case) costs one
   compare. Advancing resets only the slots actually entered — a
   fast-forward jump over k windows touches min(k, cap) slots. *)
let advance t round =
  let w = round / t.win in
  if w = t.cur_index then t.cur
  else begin
    let cap = Array.length t.ring in
    let first = max (t.cur_index + 1) (w - cap + 1) in
    for idx = first to w do
      reset_slot t.ring.(idx mod cap) idx
    done;
    t.cur_index <- w;
    t.cur <- t.ring.(w mod cap);
    t.cur
  end

let note_send t ~round =
  let s = advance t round in
  s.s_sends <- s.s_sends + 1

let note_deliver t ~round =
  let s = advance t round in
  s.s_deliveries <- s.s_deliveries + 1

let note_complete t ~round =
  let s = advance t round in
  s.s_completions <- s.s_completions + 1

let note_inject t ~round =
  let s = advance t round in
  s.s_injections <- s.s_injections + 1

let note_drop t ~round =
  let s = advance t round in
  s.s_drops <- s.s_drops + 1

let note_retransmit t ~round =
  let s = advance t round in
  s.s_retransmits <- s.s_retransmits + 1

let note_backlog t ~round ~backlog =
  let s = advance t round in
  if backlog > s.s_max_backlog then s.s_max_backlog <- backlog

let note_in_flight t ~round ~in_flight =
  let s = advance t round in
  if in_flight > s.s_max_in_flight then s.s_max_in_flight <- in_flight

type window = {
  w_index : int;
  w_start : int;
  w_len : int;
  sends : int;
  deliveries : int;
  completions : int;
  injections : int;
  drops : int;
  retransmits : int;
  max_backlog : int;
  max_in_flight : int;
}

let evicted t =
  let cap = Array.length t.ring in
  max 0 (t.cur_index + 1 - cap)

let windows t =
  if t.cur_index < 0 then []
  else begin
    let cap = Array.length t.ring in
    let first = max 0 (t.cur_index + 1 - cap) in
    List.init
      (t.cur_index - first + 1)
      (fun i ->
        let idx = first + i in
        let s = t.ring.(idx mod cap) in
        (* Slots between the oldest event and the newest are always
           live: advance resets every entered slot, and fast-forwarded
           windows were reset to zero on the way past. *)
        assert (s.s_index = idx);
        {
          w_index = idx;
          w_start = idx * t.win;
          w_len = t.win;
          sends = s.s_sends;
          deliveries = s.s_deliveries;
          completions = s.s_completions;
          injections = s.s_injections;
          drops = s.s_drops;
          retransmits = s.s_retransmits;
          max_backlog = s.s_max_backlog;
          max_in_flight = s.s_max_in_flight;
        })
  end

let windows_capacity t = Array.length t.ring

(* Fold [src]'s retained windows into [into], aligning on absolute
   window index: counters add, maxima take the max. This bypasses the
   [note_*] hooks on purpose — [advance] must never see a round behind
   [into.cur_index], but merged windows routinely are. [into] is first
   advanced to [src]'s newest window (resetting any slots skipped on
   the way, exactly as a quiet stretch would); source windows that have
   already slid out of [into]'s retention range are dropped, which is
   precisely what would have happened had the events been recorded
   into [into] live. *)
let merge_into ~into src =
  if into.win <> src.win then
    invalid_arg "Telemetry.merge_into: window sizes differ";
  if Array.length into.ring <> Array.length src.ring then
    invalid_arg "Telemetry.merge_into: ring capacities differ";
  let cap = Array.length into.ring in
  List.iter
    (fun w ->
      if w.w_index > into.cur_index then ignore (advance into w.w_start);
      if w.w_index > into.cur_index - cap then begin
        let s = into.ring.(w.w_index mod cap) in
        s.s_sends <- s.s_sends + w.sends;
        s.s_deliveries <- s.s_deliveries + w.deliveries;
        s.s_completions <- s.s_completions + w.completions;
        s.s_injections <- s.s_injections + w.injections;
        s.s_drops <- s.s_drops + w.drops;
        s.s_retransmits <- s.s_retransmits + w.retransmits;
        if w.max_backlog > s.s_max_backlog then s.s_max_backlog <- w.max_backlog;
        if w.max_in_flight > s.s_max_in_flight then
          s.s_max_in_flight <- w.max_in_flight
      end)
    (windows src)

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun w ->
      let obj =
        J.Obj
          [
            ("type", J.Str "window");
            ("index", J.Int w.w_index);
            ("start", J.Int w.w_start);
            ("len", J.Int w.w_len);
            ("sends", J.Int w.sends);
            ("deliveries", J.Int w.deliveries);
            ("completions", J.Int w.completions);
            ("injections", J.Int w.injections);
            ("drops", J.Int w.drops);
            ("retransmits", J.Int w.retransmits);
            ("max_backlog", J.Int w.max_backlog);
            ("max_in_flight", J.Int w.max_in_flight);
          ]
      in
      Buffer.add_string buf (J.to_string obj);
      Buffer.add_char buf '\n')
    (windows t);
  Buffer.contents buf

let blocks = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  let hi = Array.fold_left max 0. values in
  let buf = Buffer.create (Array.length values * 3) in
  Array.iter
    (fun v ->
      let level =
        if hi <= 0. || v <= 0. then 0
        else min 7 (int_of_float (v /. hi *. 7.99))
      in
      Buffer.add_string buf blocks.(level))
    values;
  Buffer.contents buf

module Reservoir = struct
  type 'a res = {
    k_first : int;
    k_slowest : int;
    k_sample : int;
    rng : Rng.t;
    mutable firsts : 'a list; (* newest first; length <= k_first *)
    mutable n_firsts : int;
    slow : (int, 'a) Heap.t; (* min-heap on delay: root = evictee *)
    sample : 'a option array;
    mutable r_seen : int;
    mutable r_completed : int;
    mutable r_stranded : int;
  }

  let create ?(first = 4) ?(slowest = 8) ?(sample = 8) ~seed () =
    {
      k_first = max 0 first;
      k_slowest = max 0 slowest;
      k_sample = max 0 sample;
      rng = Rng.create seed;
      firsts = [];
      n_firsts = 0;
      slow = Heap.create ();
      sample = Array.make (max 1 (max 0 sample)) None;
      r_seen = 0;
      r_completed = 0;
      r_stranded = 0;
    }

  let note r ~delay s =
    let i = r.r_seen in
    r.r_seen <- i + 1;
    (match delay with
    | None -> r.r_stranded <- r.r_stranded + 1
    | Some d ->
        r.r_completed <- r.r_completed + 1;
        if r.k_slowest > 0 then begin
          if Heap.size r.slow < r.k_slowest then Heap.push r.slow d s
          else
            match Heap.peek r.slow with
            | Some (dmin, _) when d > dmin ->
                ignore (Heap.pop r.slow);
                Heap.push r.slow d s
            | _ -> ()
        end);
    if r.n_firsts < r.k_first then begin
      r.firsts <- s :: r.firsts;
      r.n_firsts <- r.n_firsts + 1
    end;
    if r.k_sample > 0 then begin
      if i < r.k_sample then r.sample.(i) <- Some s
      else begin
        (* Algorithm R: the i-th span replaces a random slot with
           probability k/(i+1). *)
        let j = Rng.below r.rng (i + 1) in
        if j < r.k_sample then r.sample.(j) <- Some s
      end
    end

  let seen r = r.r_seen
  let completed r = r.r_completed
  let stranded r = r.r_stranded

  let exemplars r =
    let firsts = List.rev_map (fun s -> ("first", s)) r.firsts in
    let slow = ref [] in
    let h = Heap.create () in
    (* Drain a copy so [exemplars] is re-callable; ascending pops
       prepended yield largest-delay-first. *)
    let rec refill () =
      match Heap.pop r.slow with
      | None -> ()
      | Some (d, s) ->
          Heap.push h d s;
          slow := ("slowest", s) :: !slow;
          refill ()
    in
    refill ();
    let rec restore () =
      match Heap.pop h with
      | None -> ()
      | Some (d, s) ->
          Heap.push r.slow d s;
          restore ()
    in
    restore ();
    let sample =
      Array.to_list r.sample
      |> List.filter_map (fun o -> Option.map (fun s -> ("sample", s)) o)
    in
    firsts @ !slow @ sample
end
