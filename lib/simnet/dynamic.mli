(** Adversarial dynamic-topology schedules and churn models.

    The paper's model (Section 2.1) fixes one static interconnection
    graph for the whole execution. ROADMAP item 2 asks what survives
    when the graph moves: Sharma–Busch's dynamic distributed queuing
    works under a {e T-interval connectivity} adversary (some spanning
    subgraph survives every window of [T] consecutive rounds), and
    churn studies replace fail-stop crashes with nodes and links that
    leave and rejoin.

    A {!schedule} describes, for every round [t >= 1], which nodes and
    which links of a base graph are {e up}. Schedules are pure
    functions of [(base graph, parameters, seed)] — querying them has
    no side effects and any round may be queried in any order, so the
    engines, the routing helpers and the diagnosis helpers below all
    see one consistent topology history.

    Both {!Engine.run} and {!Reference.run} accept a started schedule
    via [?dynamic]. Semantics, chosen to generalise the PR 1
    [Faults.crash] plans into time-varying topology:

    - a {e down node} neither sends, receives nor ticks; its local
      state, outbox and queued incoming messages are preserved, and
      messages transmitted to it while down are dropped (tallied as
      node drops, and as crash drops in [Metrics]) — exactly a crash
      with [recover_at], except driven by the schedule;
    - a transmission over a {e down link} in round [t] is dropped at
      the sender's end (tallied as a link drop, and as a plain drop in
      [Metrics]); the fault plan's decision stream is {e not}
      consumed for it, so attaching the same [Faults] plan with and
      without a schedule keeps the plan's per-transmission indices
      aligned on the transmissions that actually reach the link;
    - the identity schedule ({!identity}) is bit-identical to not
      passing [?dynamic] at all — pinned by qcheck in
      [test/test_dynamic.ml], including with [?metrics] and [?faults]
      attached. *)

module Graph = Countq_topology.Graph

type schedule
(** A per-round up/down assignment for the nodes and links of a base
    graph. Rounds below 1 are clamped to 1. *)

val label : schedule -> string
(** Human-readable name encoding the constructor and its parameters —
    stable, so it is safe to use in sweep point names (cache keys). *)

val base : schedule -> Graph.t
(** The underlying static graph; the schedule never adds edges. *)

val node_up : schedule -> round:int -> node:int -> bool
val link_up : schedule -> round:int -> u:int -> v:int -> bool
(** [link_up] is symmetric in [u]/[v] and meaningful only for edges of
    {!base}. *)

val usable : schedule -> round:int -> u:int -> v:int -> bool
(** Link up {e and} both endpoints up: a transmission entering the
    link in round [round] would be delivered. *)

(** {1 Constructors} *)

val identity : Graph.t -> schedule
(** Everything up forever — the static network as a schedule. *)

val of_fun :
  label:string ->
  ?node_up:(round:int -> node:int -> bool) ->
  ?link_up:(round:int -> u:int -> v:int -> bool) ->
  Graph.t ->
  schedule
(** Escape hatch for bespoke adversaries (tests, experiments). Omitted
    components default to always-up. *)

val link_flaps :
  seed:int64 -> rate:float -> ?epoch:int -> ?protect:int list -> Graph.t -> schedule
(** Seeded link-flap process: time is cut into epochs of [epoch]
    rounds (default 8); in each epoch every edge is independently down
    with probability [rate]. Edges incident to a node in [protect]
    never flap. No connectivity guarantee — at high rates the graph
    partitions, which is the point. *)

val node_churn :
  seed:int64 -> rate:float -> ?epoch:int -> ?protect:int list -> Graph.t -> schedule
(** Seeded churn: in each epoch of [epoch] rounds (default 8) every
    node not in [protect] is independently down (left) with
    probability [rate], rejoining with state intact in the next up
    epoch — the crash→rejoin generalisation of [Faults.crash_only]. *)

val t_interval : seed:int64 -> t:int -> Graph.t -> schedule
(** The worst-case oblivious T-interval-connected adversary of the
    dynamic-queuing literature: in each window of [t] rounds only a
    (seeded, per-window random) spanning tree of the base graph is up;
    every other edge is down. Connectivity is preserved in every
    round, but the surviving structure changes completely between
    windows. *)

val periodic_rewire : seed:int64 -> period:int -> ?keep:float -> Graph.t -> schedule
(** Milder periodic rewiring: each window of [period] rounds keeps a
    fresh random spanning tree plus each remaining edge independently
    with probability [keep] (default 0.5). Always connected. *)

val tree_attack : ?period:int -> tree:Graph.t -> Graph.t -> schedule
(** Worst-case spanning-structure attack: cycles through the edges of
    [tree] (the protocol's spanning structure, e.g.
    [Tree.to_graph]), severing one tree edge per epoch of [period]
    rounds (default 8). On a graph richer than the tree the network
    stays connected and a repairing protocol can route around the cut;
    run on the tree itself it disconnects the network every epoch. *)

val partition : at:int -> island:int list -> Graph.t -> schedule
(** From round [at] on, every edge between [island] and the rest of
    the graph is permanently down (nodes stay up) — the adversary that
    walls off the token holder. *)

(** {1 Topology queries}

    Used by churn-tolerant protocols ("a node knows its current
    neighbourhood" — the standard dynamic-graph assumption) and by
    stall diagnosis. *)

val up_neighbors : schedule -> round:int -> int -> int list
(** Neighbours reachable over a usable link in [round], ascending.
    Empty if the node itself is down. *)

val reachable : schedule -> round:int -> from:int -> bool array
(** Nodes reachable from [from] over usable links in round [round]
    (BFS on the up-graph). [from] is reachable from itself even while
    down. *)

val next_hop : schedule -> round:int -> src:int -> dst:int -> int option
(** First hop of a shortest usable path from [src] to [dst] in round
    [round] ([None] if disconnected, down, or [src = dst]).
    Deterministic: BFS visiting neighbours in ascending order. *)

val describe_cut : schedule -> round:int -> from:int -> string
(** One-line partition description as seen from [from] — which nodes
    it can still reach and which are cut off — for [Stalled]
    verdicts. *)

(** {1 Runtime} *)

type runtime
(** A schedule attached to one engine run, accumulating drop tallies.
    Create a fresh one per run. *)

type stats = { link_drops : int; node_drops : int }

val start : schedule -> runtime
val sched : runtime -> schedule
val note_link_drop : runtime -> unit
val note_node_drop : runtime -> unit
val stats : runtime -> stats

val no_stats : stats
val pp_stats : Format.formatter -> stats -> unit
