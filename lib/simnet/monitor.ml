(* Runtime invariant monitors. See monitor.mli. *)

type kind = Safety | Liveness

type status =
  | Pass
  | Violated of string
  | Stalled of { round : int; last_progress : int; detail : string option }

type outcome = { name : string; kind : kind; status : status }

type report = outcome list

(* A monitor is a bundle of callbacks over hidden mutable state.
   [round_end] returns [true] to request an engine halt; [at_end] runs
   the end-of-run checks. *)
type 'r t = {
  mon_name : string;
  mon_kind : kind;
  deliver : round:int -> src:int -> dst:int -> unit;
  complete : round:int -> node:int -> 'r -> unit;
  round_end : round:int -> in_flight:int -> bool;
  at_end : unit -> unit;
  status : unit -> status;
}

let name m = m.mon_name
let kind m = m.mon_kind

let nop_deliver ~round:_ ~src:_ ~dst:_ = ()
let nop_round_end ~round:_ ~in_flight:_ = false

(* Record only the first violation: later ones are usually cascade. *)
let violation_cell () =
  let v = ref None in
  let fail m = if !v = None then v := Some m in
  (v, fail)

let safety name make_complete =
  let v, fail = violation_cell () in
  {
    mon_name = name;
    mon_kind = Safety;
    deliver = nop_deliver;
    complete = make_complete fail;
    round_end = nop_round_end;
    at_end = (fun () -> ());
    status = (fun () -> match !v with None -> Pass | Some m -> Violated m);
  }

let rank_monotonic ~rank =
  let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
  safety "safety-rank-monotonicity" (fun fail ~round ~node value ->
      let r = rank value in
      (match Hashtbl.find_opt last node with
      | Some prev when r <= prev ->
          fail
            (Printf.sprintf "node %d completed rank %d after rank %d (round %d)"
               node r prev round)
      | _ -> ());
      Hashtbl.replace last node r)

let distinct_ranks ~rank =
  let owner : (int, int) Hashtbl.t = Hashtbl.create 16 in
  safety "safety-distinct-ranks" (fun fail ~round ~node value ->
      let r = rank value in
      (match Hashtbl.find_opt owner r with
      | Some first ->
          fail
            (Printf.sprintf "rank %d handed out twice: nodes %d and %d (round %d)"
               r first node round)
      | None -> ());
      Hashtbl.replace owner r node)

let unique_completion ~node_of =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  safety "safety-unique-completion" (fun fail ~round ~node value ->
      let who = node_of ~node value in
      if Hashtbl.mem seen who then
        fail (Printf.sprintf "requester %d completed twice (round %d)" who round)
      else Hashtbl.add seen who ())

let chain_consistent ~op ~pred =
  let completed : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* predecessor identity -> claiming op; None encodes Init. *)
  let claimed : ((int * int) option, int * int) Hashtbl.t = Hashtbl.create 16 in
  let pp (o, s) = Printf.sprintf "%d.%d" o s in
  safety "safety-chain-consistency" (fun fail ~round ~node:_ value ->
      let o = op value in
      let p = pred value in
      if Hashtbl.mem completed o then
        fail (Printf.sprintf "operation %s completed twice (round %d)" (pp o) round);
      Hashtbl.replace completed o ();
      if p = Some o then
        fail
          (Printf.sprintf "operation %s is its own predecessor (round %d)"
             (pp o) round);
      match Hashtbl.find_opt claimed p with
      | Some first ->
          fail
            (Printf.sprintf "operations %s and %s share predecessor %s (round %d)"
               (pp first) (pp o)
               (match p with None -> "init" | Some q -> pp q)
               round)
      | None -> Hashtbl.add claimed p o)

(* [progress] and [completion_progress] differ only in which events
   reset the silence clock. [diagnose] runs once, at the stall, so a
   costly diagnosis (e.g. a reachability sweep) is off the hot path. *)
let progress_monitor ~name ~count_delivers ?(budget = 512) ?diagnose () =
  if budget < 1 then invalid_arg ("Monitor." ^ name ^ ": budget must be >= 1");
  let last = ref 0 in
  let verdict = ref None in
  let bump ~round = last := max !last round in
  {
    mon_name = name;
    mon_kind = Liveness;
    deliver =
      (if count_delivers then fun ~round ~src:_ ~dst:_ -> bump ~round
       else nop_deliver);
    complete = (fun ~round ~node:_ _ -> bump ~round);
    round_end =
      (fun ~round ~in_flight:_ ->
        if !verdict = None && round - !last >= budget then begin
          let detail =
            match diagnose with None -> None | Some f -> f ~round
          in
          verdict := Some (Stalled { round; last_progress = !last; detail });
          true
        end
        else false);
    at_end = (fun () -> ());
    status = (fun () -> Option.value !verdict ~default:Pass);
  }

let progress ?budget ?diagnose () =
  progress_monitor ~name:"liveness-progress" ~count_delivers:true ?budget
    ?diagnose ()

let completion_progress ?budget ?diagnose () =
  progress_monitor ~name:"liveness-completion-progress" ~count_delivers:false
    ?budget ?diagnose ()

let completes ~expected =
  let count = ref 0 in
  let missing = ref 0 in
  {
    mon_name = "liveness-completion";
    mon_kind = Liveness;
    deliver = nop_deliver;
    complete = (fun ~round:_ ~node:_ _ -> incr count);
    round_end = nop_round_end;
    at_end = (fun () -> missing := max 0 (expected - !count));
    status =
      (fun () ->
        if !missing = 0 then Pass
        else
          Violated
            (Printf.sprintf "%d of %d operations never completed" !missing
               expected));
  }

let observe monitors =
  {
    Engine.on_deliver =
      (fun ~round ~src ~dst ->
        List.iter (fun m -> m.deliver ~round ~src ~dst) monitors);
    on_complete =
      (fun ~round ~node ~value ->
        List.iter (fun m -> m.complete ~round ~node value) monitors);
    on_round_end =
      (fun ~round ~in_flight ->
        let halt =
          List.fold_left
            (fun acc m -> if m.round_end ~round ~in_flight then true else acc)
            false monitors
        in
        if halt then `Halt else `Continue);
  }

let finalise monitors =
  List.map
    (fun m ->
      m.at_end ();
      { name = m.mon_name; kind = m.mon_kind; status = m.status () })
    monitors

let ok (o : outcome) = o.status = Pass

let all_pass report = List.for_all ok report

let safety_ok report = List.for_all (fun o -> o.kind = Liveness || ok o) report

let liveness_ok report = List.for_all (fun o -> o.kind = Safety || ok o) report

let stalled report =
  List.exists
    (fun (o : outcome) ->
      match o.status with Stalled _ -> true | _ -> false)
    report

let pp_outcome ppf o =
  let k = match o.kind with Safety -> "safety" | Liveness -> "liveness" in
  match o.status with
  | Pass -> Format.fprintf ppf "%s [%s]: pass" o.name k
  | Violated m -> Format.fprintf ppf "%s [%s]: VIOLATED - %s" o.name k m
  | Stalled { round; last_progress; detail } ->
      Format.fprintf ppf "%s [%s]: STALLED at round %d (no progress since %d)%s"
        o.name k round last_progress
        (match detail with None -> "" | Some d -> " - " ^ d)

let pp_report ppf report =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_outcome ppf report
